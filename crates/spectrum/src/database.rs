//! The TVWS spectrum database server.
//!
//! Plays the role of the certified Nominet database the paper tested
//! against (§6.1, §6.2): evaluates incumbent protection at the query
//! location/time, answers with per-channel grants (max EIRP + lease
//! expiry), and supports operator-side withdrawal of a channel — the
//! lever the Fig 6 experiment pulls ("at 57 sec channel is removed from
//! the DB for 5 min").
//!
//! The database protects *incumbents only*: "the TV white space database
//! is used only to protect incumbents ... and not to coordinate spectrum
//! among secondary, TV white space devices" (§4.2). Coordination between
//! CellFi cells is deliberately not its job.

use crate::incumbent::Incumbent;
use crate::paws::{
    AvailSpectrumReq, AvailSpectrumResp, InitReq, InitResp, SpectrumGrant, SpectrumUseNotify,
};
use crate::plan::ChannelPlan;
use cellfi_types::geo::Point;
use cellfi_types::time::{Duration, Instant};
use cellfi_types::ChannelId;
use std::collections::{BTreeMap, BTreeSet};

/// Availability of one channel at a location.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelAvailability {
    /// The channel.
    pub channel: ChannelId,
    /// Maximum EIRP permitted (ETSI power classes; 36 dBm for a fixed
    /// master with the paper's antenna).
    pub max_eirp_dbm: f64,
    /// Grant expiry.
    pub expires: Instant,
}

/// The database server.
#[derive(Debug, Clone)]
pub struct SpectrumDatabase {
    plan: ChannelPlan,
    incumbents: Vec<Incumbent>,
    /// Channels withdrawn by the operator until the given instant
    /// (`None` = indefinitely).
    withdrawn: BTreeMap<ChannelId, Option<Instant>>,
    /// Default lease validity handed out with each grant.
    lease_validity: Duration,
    /// Max EIRP for fixed master devices (ETSI class).
    max_eirp_dbm: f64,
    /// Longest time a client may cache an availability answer.
    max_polling_secs: u64,
    /// Ruleset identifier advertised in `INIT_RESP`.
    ruleset_id: &'static str,
    /// Log of use notifications received (audit trail).
    notifications: Vec<SpectrumUseNotify>,
}

impl SpectrumDatabase {
    /// A database over `plan` with the given incumbents. Lease validity
    /// defaults to 2 hours — the paper observes "the granularity of
    /// channel availability is expected to be in hours and days" (§6.2).
    pub fn new(plan: ChannelPlan, incumbents: Vec<Incumbent>) -> SpectrumDatabase {
        SpectrumDatabase {
            plan,
            incumbents,
            withdrawn: BTreeMap::new(),
            lease_validity: Duration::from_secs(2 * 3600),
            max_eirp_dbm: 36.0,
            max_polling_secs: 900,
            ruleset_id: "ETSI-EN-301-598-1.1.1",
            notifications: Vec::new(),
        }
    }

    /// Override the maximum client polling interval (seconds).
    pub fn with_max_polling(mut self, secs: u64) -> SpectrumDatabase {
        self.max_polling_secs = secs;
        self
    }

    /// Adopt a regulatory rule profile wholesale: lease validity, EIRP
    /// cap, polling cadence and the advertised ruleset identifier all
    /// come from `profile`. The historical defaults equal
    /// [`RuleProfile::etsi`], so `with_profile(&RuleProfile::etsi())`
    /// is a no-op.
    pub fn with_profile(mut self, profile: &crate::profile::RuleProfile) -> SpectrumDatabase {
        self.lease_validity = profile.lease_validity;
        self.max_eirp_dbm = profile.max_eirp_dbm;
        self.max_polling_secs = profile.max_polling_secs;
        self.ruleset_id = profile.ruleset_id;
        self
    }

    /// Serve a PAWS `INIT_REQ`.
    pub fn init(&self, _req: &InitReq) -> InitResp {
        InitResp {
            max_polling_secs: self.max_polling_secs,
            ruleset: self.ruleset_id.to_owned(),
        }
    }

    /// Override the lease validity.
    pub fn with_lease_validity(mut self, validity: Duration) -> SpectrumDatabase {
        self.lease_validity = validity;
        self
    }

    /// The channel plan served.
    pub fn plan(&self) -> ChannelPlan {
        self.plan
    }

    /// Operator withdraws `channel` until `until` (`None` = forever).
    /// Models the Fig 6 "channel removed from the DB" event.
    pub fn withdraw_channel(&mut self, channel: ChannelId, until: Option<Instant>) {
        self.withdrawn.insert(channel, until);
    }

    /// Operator reinstates a withdrawn channel immediately.
    pub fn reinstate_channel(&mut self, channel: ChannelId) {
        self.withdrawn.remove(&channel);
    }

    /// Register a new incumbent at runtime (e.g. a mic event being
    /// licensed for tonight).
    pub fn add_incumbent(&mut self, incumbent: Incumbent) {
        self.incumbents.push(incumbent);
    }

    fn channel_withdrawn(&self, channel: ChannelId, now: Instant) -> bool {
        match self.withdrawn.get(&channel) {
            Some(None) => true,
            Some(Some(until)) => now < *until,
            None => false,
        }
    }

    /// Whether `channel` is available to a secondary at `location`/`now`.
    pub fn is_available(&self, channel: ChannelId, location: Point, now: Instant) -> bool {
        self.plan.channel(channel.0).is_some()
            && !self.channel_withdrawn(channel, now)
            && !self
                .incumbents
                .iter()
                .any(|i| i.channel() == channel && i.blocks(location, now))
    }

    /// All channels available at `location`/`now`, ascending by number.
    pub fn available_channels(&self, location: Point, now: Instant) -> Vec<ChannelAvailability> {
        let expires = now + self.lease_validity;
        self.plan
            .channels()
            .iter()
            .filter(|ch| self.is_available(ch.id, location, now))
            .map(|ch| ChannelAvailability {
                channel: ch.id,
                max_eirp_dbm: self.max_eirp_dbm,
                expires,
            })
            .collect()
    }

    /// Serve a PAWS `AVAIL_SPECTRUM_REQ`. The location's uncertainty is
    /// honoured conservatively: a channel is granted only if available at
    /// the reported point *and* at the four cardinal extremes of the
    /// uncertainty circle.
    pub fn avail_spectrum(&self, req: &AvailSpectrumReq) -> AvailSpectrumResp {
        let now = Instant::from_micros(req.request_time_us);
        let centre = req.location.point();
        let u = req.location.uncertainty;
        let probes = [
            centre,
            Point::new(centre.x + u, centre.y),
            Point::new(centre.x - u, centre.y),
            Point::new(centre.x, centre.y + u),
            Point::new(centre.x, centre.y - u),
        ];
        let mut granted: BTreeSet<ChannelId> = self
            .available_channels(centre, now)
            .iter()
            .map(|a| a.channel)
            .collect();
        for p in &probes[1..] {
            let here: BTreeSet<ChannelId> = self
                .available_channels(*p, now)
                .iter()
                .map(|a| a.channel)
                .collect();
            granted = granted.intersection(&here).copied().collect();
        }
        let expires = now + self.lease_validity;
        AvailSpectrumResp {
            grants: granted
                .into_iter()
                .map(|channel| SpectrumGrant {
                    channel,
                    max_eirp_dbm: self.max_eirp_dbm,
                    expires_us: expires.as_micros(),
                })
                .collect(),
            response_time_us: now.as_micros(),
        }
    }

    /// Accept a `SPECTRUM_USE_NOTIFY` (logged for audit).
    pub fn notify_use(&mut self, notify: SpectrumUseNotify) {
        self.notifications.push(notify);
    }

    /// Audit trail of use notifications.
    pub fn notifications(&self) -> &[SpectrumUseNotify] {
        &self.notifications
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paws::{DeviceDescriptor, GeoLocation};

    fn db() -> SpectrumDatabase {
        let incumbents = vec![
            Incumbent::TvStation {
                channel: ChannelId::new(30),
                location: Point::new(0.0, 0.0),
                protected_radius: 5_000.0,
            },
            Incumbent::WirelessMic {
                channel: ChannelId::new(40),
                location: Point::new(0.0, 0.0),
                protected_radius: 2_000.0,
                events: vec![(Instant::from_secs(100), Instant::from_secs(400))],
            },
        ];
        SpectrumDatabase::new(ChannelPlan::Eu, incumbents)
    }

    #[test]
    fn tv_channel_blocked_near_transmitter() {
        let d = db();
        let near = Point::new(1_000.0, 0.0);
        assert!(!d.is_available(ChannelId::new(30), near, Instant::ZERO));
        let far = Point::new(50_000.0, 0.0);
        assert!(d.is_available(ChannelId::new(30), far, Instant::ZERO));
    }

    #[test]
    fn mic_channel_blocked_only_during_event() {
        let d = db();
        let p = Point::new(500.0, 0.0);
        let ch = ChannelId::new(40);
        assert!(d.is_available(ch, p, Instant::from_secs(50)));
        assert!(!d.is_available(ch, p, Instant::from_secs(150)));
        assert!(d.is_available(ch, p, Instant::from_secs(450)));
    }

    #[test]
    fn available_list_excludes_blocked() {
        let d = db();
        let p = Point::new(1_000.0, 0.0);
        let avail = d.available_channels(p, Instant::from_secs(150));
        let ids: Vec<u32> = avail.iter().map(|a| a.channel.0).collect();
        assert!(!ids.contains(&30));
        assert!(!ids.contains(&40));
        assert_eq!(ids.len(), ChannelPlan::Eu.len() - 2);
    }

    #[test]
    fn withdrawal_and_reinstatement() {
        // The Fig 6 script: withdraw for 5 minutes, availability follows.
        let mut d = db();
        let ch = ChannelId::new(38);
        let p = Point::new(100_000.0, 0.0);
        assert!(d.is_available(ch, p, Instant::from_secs(56)));
        d.withdraw_channel(ch, Some(Instant::from_secs(57 + 300)));
        assert!(!d.is_available(ch, p, Instant::from_secs(60)));
        assert!(d.is_available(ch, p, Instant::from_secs(360)));
        d.withdraw_channel(ch, None);
        assert!(!d.is_available(ch, p, Instant::from_secs(10_000)));
        d.reinstate_channel(ch);
        assert!(d.is_available(ch, p, Instant::from_secs(10_000)));
    }

    #[test]
    fn grants_carry_lease_expiry() {
        let d = db().with_lease_validity(Duration::from_secs(600));
        let p = Point::new(100_000.0, 0.0);
        let avail = d.available_channels(p, Instant::from_secs(100));
        assert!(avail.iter().all(|a| a.expires == Instant::from_secs(700)));
        assert!(avail.iter().all(|a| (a.max_eirp_dbm - 36.0).abs() < 1e-9));
    }

    #[test]
    fn paws_request_respects_uncertainty() {
        // AP far from the TV contour but with uncertainty that reaches
        // into it: channel 30 must not be granted.
        let d = db();
        let req = AvailSpectrumReq {
            device: DeviceDescriptor::master_with_clients("ap", 5),
            location: GeoLocation {
                x: 5_500.0,
                y: 0.0,
                uncertainty: 1_000.0,
            },
            request_time_us: 0,
        };
        let resp = d.avail_spectrum(&req);
        assert!(resp.grants.iter().all(|g| g.channel != ChannelId::new(30)));
        // A pinpoint query at the same spot does grant channel 30.
        let pin = AvailSpectrumReq {
            location: GeoLocation {
                uncertainty: 0.0,
                ..req.location
            },
            ..req
        };
        let resp = d.avail_spectrum(&pin);
        assert!(resp.grants.iter().any(|g| g.channel == ChannelId::new(30)));
    }

    #[test]
    fn notifications_are_logged() {
        let mut d = db();
        d.notify_use(SpectrumUseNotify {
            device: DeviceDescriptor::master_with_clients("ap", 2),
            channel: ChannelId::new(38),
            eirp_dbm: 36.0,
        });
        assert_eq!(d.notifications().len(), 1);
        assert_eq!(d.notifications()[0].channel, ChannelId::new(38));
    }

    #[test]
    fn profile_swaps_ruleset_timing_and_eirp() {
        use crate::profile::RuleProfile;
        let d = db().with_profile(&RuleProfile::fcc());
        let req = InitReq {
            device: DeviceDescriptor::master_with_clients("ap", 1),
            location: GeoLocation::gps(Point::ORIGIN),
        };
        let init = d.init(&req);
        assert_eq!(init.ruleset, "FCC-Part15-SubpartH-2019");
        assert_eq!(init.max_polling_secs, 86_400);
        let p = Point::new(100_000.0, 0.0);
        let avail = d.available_channels(p, Instant::from_secs(0));
        assert!(avail.iter().all(|a| (a.max_eirp_dbm - 30.0).abs() < 1e-9));
        assert!(avail
            .iter()
            .all(|a| a.expires == Instant::from_secs(24 * 3600)));
        // The ETSI profile reproduces the historical defaults exactly.
        let etsi = db().with_profile(&RuleProfile::etsi());
        let init = etsi.init(&req);
        assert_eq!(init.ruleset, "ETSI-EN-301-598-1.1.1");
        assert_eq!(init.max_polling_secs, 900);
    }

    #[test]
    fn out_of_plan_channel_never_available() {
        let d = db();
        assert!(!d.is_available(ChannelId::new(99), Point::ORIGIN, Instant::ZERO));
    }

    #[test]
    fn runtime_incumbent_registration() {
        let mut d = db();
        let p = Point::new(100_000.0, 0.0);
        let ch = ChannelId::new(50);
        assert!(d.is_available(ch, p, Instant::from_secs(10)));
        d.add_incumbent(Incumbent::WirelessMic {
            channel: ch,
            location: p,
            protected_radius: 500.0,
            events: vec![(Instant::ZERO, Instant::from_secs(100))],
        });
        assert!(!d.is_available(ch, p, Instant::from_secs(10)));
    }
}
