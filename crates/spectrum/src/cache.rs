//! Availability-response cache keyed on quantized location.
//!
//! A metro fleet has many APs per database shard, and neighbours a few
//! hundred metres apart get identical availability answers — the
//! database's protected contours are much coarser than AP spacing. The
//! cache quantizes the query location onto a grid and replays a stored
//! `AVAIL_SPECTRUM_RESP` for every AP in the same cell, shedding
//! redundant load from the shard.
//!
//! **Staleness contract:** a cached response is never served at or past
//! `min(inserted + TTL, earliest grant expiry)` — the expiry boundary is
//! *exclusive*, matching the `SpectrumGrant::valid_at` convention
//! everywhere else in this crate. Responses keep their original
//! `response_time_us`, so a consumer that anchors its regulatory
//! confidence window to the response timestamp (as
//! [`crate::lifecycle::LeaseLifecycle`] does) stays exactly as
//! compliant as it would be polling the database directly: the cache
//! can shed load, never stretch a vacate deadline.

use std::collections::BTreeMap;

use cellfi_types::time::{Duration, Instant};

use crate::paws::{AvailSpectrumResp, GeoLocation};

/// One stored response plus the tick at which it stops being servable.
#[derive(Debug, Clone)]
struct CacheEntry {
    resp: AvailSpectrumResp,
    /// Exclusive: the entry is served only while `now < valid_until`.
    valid_until: Instant,
}

/// Per-shard availability-response cache. Locations are quantized onto
/// a `quantum`-metre grid; each cell holds at most one response.
#[derive(Debug, Clone)]
pub struct AvailabilityCache {
    quantum: f64,
    ttl: Duration,
    entries: BTreeMap<(i64, i64), CacheEntry>,
    hits: u64,
    misses: u64,
}

impl AvailabilityCache {
    /// A cache quantizing locations onto a `quantum`-metre grid, with
    /// entries living at most `ttl` past insertion (less if a grant in
    /// the response expires sooner).
    pub fn new(quantum: f64, ttl: Duration) -> AvailabilityCache {
        AvailabilityCache {
            quantum: quantum.max(1.0),
            ttl,
            entries: BTreeMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Grid cell for a query location (the uncertainty disc's centre).
    fn key(&self, loc: &GeoLocation) -> (i64, i64) {
        let p = loc.point();
        (
            (p.x / self.quantum).floor() as i64,
            (p.y / self.quantum).floor() as i64,
        )
    }

    /// Look up a servable response for `loc` at `now`, counting the
    /// probe as a hit or miss. Entries found expired are evicted.
    pub fn get(&mut self, loc: &GeoLocation, now: Instant) -> Option<AvailSpectrumResp> {
        let key = self.key(loc);
        match self.entries.get(&key) {
            Some(entry) if now < entry.valid_until => {
                self.hits += 1;
                Some(entry.resp.clone())
            }
            Some(_) => {
                self.entries.remove(&key);
                self.misses += 1;
                None
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Store a fresh response for `loc`. The entry's lifetime is
    /// `min(now + ttl, earliest grant expiry)`, exclusive; a response
    /// with no grants (nothing available here) lives the full TTL.
    pub fn insert(&mut self, loc: &GeoLocation, resp: AvailSpectrumResp, now: Instant) {
        let mut valid_until = now + self.ttl;
        for grant in &resp.grants {
            let expiry = Instant::from_micros(grant.expires_us);
            if expiry < valid_until {
                valid_until = expiry;
            }
        }
        let key = self.key(loc);
        self.entries.insert(key, CacheEntry { resp, valid_until });
    }

    /// Probes answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Probes that had to go to the database.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Fraction of probes served from the cache (0 when unprobed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Live entries (expired ones are evicted lazily on probe).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paws::SpectrumGrant;
    use cellfi_types::geo::Point;
    use cellfi_types::ChannelId;

    fn loc(x: f64, y: f64) -> GeoLocation {
        GeoLocation::gps(Point::new(x, y))
    }

    fn resp_with_expiry(expires_us: u64, response_time_us: u64) -> AvailSpectrumResp {
        AvailSpectrumResp {
            grants: vec![SpectrumGrant {
                channel: ChannelId::new(21),
                max_eirp_dbm: 36.0,
                expires_us,
            }],
            response_time_us,
        }
    }

    #[test]
    fn nearby_locations_share_one_entry() {
        let mut cache = AvailabilityCache::new(500.0, Duration::from_secs(10));
        let now = Instant::from_micros(0);
        cache.insert(&loc(10.0, 10.0), resp_with_expiry(100_000_000, 0), now);
        assert!(cache.get(&loc(490.0, 480.0), now).is_some());
        assert!(cache.get(&loc(510.0, 10.0), now).is_none());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn ttl_boundary_is_exclusive() {
        let mut cache = AvailabilityCache::new(500.0, Duration::from_secs(10));
        let t0 = Instant::from_micros(0);
        // Grant expires far beyond the TTL, so the TTL binds.
        cache.insert(&loc(0.0, 0.0), resp_with_expiry(3_600_000_000, 0), t0);
        let just_before = Instant::from_micros(9_999_999);
        assert!(cache.get(&loc(0.0, 0.0), just_before).is_some());
        let at_ttl = Instant::from_micros(10_000_000);
        assert!(cache.get(&loc(0.0, 0.0), at_ttl).is_none());
    }

    #[test]
    fn grant_expiry_binds_when_sooner_than_ttl() {
        let mut cache = AvailabilityCache::new(500.0, Duration::from_secs(60));
        let t0 = Instant::from_micros(0);
        // Lease expires at t=8 s, well inside the 60 s TTL.
        cache.insert(&loc(0.0, 0.0), resp_with_expiry(8_000_000, 0), t0);
        assert!(cache
            .get(&loc(0.0, 0.0), Instant::from_micros(7_999_999))
            .is_some());
        // At the lease-expiry tick the entry must already be gone:
        // exclusive end, matching SpectrumGrant::valid_at.
        assert!(cache
            .get(&loc(0.0, 0.0), Instant::from_micros(8_000_000))
            .is_none());
        assert!(cache
            .get(&loc(0.0, 0.0), Instant::from_micros(8_000_001))
            .is_none());
    }

    #[test]
    fn served_response_keeps_original_timestamp() {
        let mut cache = AvailabilityCache::new(500.0, Duration::from_secs(10));
        let t0 = Instant::from_micros(1_000_000);
        cache.insert(&loc(0.0, 0.0), resp_with_expiry(100_000_000, 1_000_000), t0);
        let later = Instant::from_micros(5_000_000);
        let served = cache
            .get(&loc(0.0, 0.0), later)
            .expect("entry is always live inside its TTL");
        assert_eq!(served.response_time_us, 1_000_000);
    }

    #[test]
    fn grantless_response_lives_the_full_ttl() {
        let mut cache = AvailabilityCache::new(500.0, Duration::from_secs(10));
        let t0 = Instant::from_micros(0);
        let empty = AvailSpectrumResp {
            grants: vec![],
            response_time_us: 0,
        };
        cache.insert(&loc(0.0, 0.0), empty, t0);
        assert!(cache
            .get(&loc(0.0, 0.0), Instant::from_micros(9_999_999))
            .is_some());
        assert!(cache
            .get(&loc(0.0, 0.0), Instant::from_micros(10_000_000))
            .is_none());
    }

    #[test]
    fn hit_rate_counts_probes() {
        let mut cache = AvailabilityCache::new(500.0, Duration::from_secs(10));
        let now = Instant::from_micros(0);
        assert_eq!(cache.hit_rate(), 0.0);
        cache.insert(&loc(0.0, 0.0), resp_with_expiry(100_000_000, 0), now);
        assert!(cache.get(&loc(0.0, 0.0), now).is_some());
        assert!(cache.get(&loc(900.0, 0.0), now).is_none());
        assert!(cache.get(&loc(0.0, 0.0), now).is_some());
        assert!((cache.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
