//! The multi-tenant spectrum manager: a fleet of lease lifecycles over
//! sharded database backends.
//!
//! One AP's lease lifecycle is provably compliant under fault injection
//! ([`crate::lifecycle`]); a metro deployment is thousands of them
//! hammering a shared database, where the dominant failure modes are
//! *correlated*: renewal storms, shard outages and revocation waves.
//! [`SpectrumFleet`] multiplexes `N` [`LeaseLifecycle`] state machines
//! over `S` database shards and adds the four defenses a production
//! spectrum manager needs:
//!
//! * **Sharding** — consistent AP→shard assignment (a seeded hash, so
//!   assignment survives fleet growth deterministically) with an
//!   independent [`FaultPlan`] per shard: one shard's outage degrades
//!   only its tenants, never the fleet.
//! * **Response caching** — availability answers are cached per shard,
//!   keyed on quantized location ([`AvailabilityCache`]). Queries are
//!   snapped to the quantization cell's representative point with an
//!   uncertainty disc covering the whole cell, so a cached answer is
//!   conservative for every AP in the cell. Replayed responses keep
//!   their original `response_time_us`; the lifecycle anchors its
//!   regulatory confidence window there, so caching sheds load without
//!   stretching any vacate deadline.
//! * **Renewal desynchronization** — each AP's activation is offset by
//!   a deterministic, seeded jitter within a configurable spread, so
//!   steady-state renewals decorrelate instead of storming. Per-shard
//!   request rates are tracked in fixed windows (peak and mean are
//!   reported; the batch sizes surface as `renew_batch` events).
//! * **Cross-channel assignment** — the fleet synthesizes a
//!   network-listen survey from its own per-channel occupancy (each
//!   co-channel AP adds a fixed interference increment), so each
//!   lifecycle's [`crate::selection`] ranking spreads the fleet across
//!   TV channels instead of taking the first grant.
//!
//! The fleet also audits itself: every tick, every transmitting AP is
//! checked against its shard's ground-truth availability, and a
//! transmission on a channel that has been unavailable for longer than
//! the profile's vacate deadline counts as a lease-gate breach (the
//! invariant the `fleet()` monitor catalogue watches — it must stay
//! zero under arbitrary fault schedules).

use std::collections::BTreeMap;

use cellfi_types::rng::SeedSeq;
use cellfi_types::time::{Duration, Instant};
use cellfi_types::units::Dbm;
use cellfi_types::ChannelId;

use crate::cache::AvailabilityCache;
use crate::client::ClientState;
use crate::database::SpectrumDatabase;
use crate::faults::{FaultInjector, FaultPlan, PawsFailure, PawsTransport};
use crate::lifecycle::{LeaseLifecycle, LifecycleConfig, LifecycleEvent, LifecycleStats};
use crate::paws::{
    AvailSpectrumReq, AvailSpectrumResp, GeoLocation, InitReq, InitResp, SpectrumUseNotify,
};
use crate::plan::ChannelPlan;
use crate::profile::RuleProfile;
use crate::selection::{ListenObservation, OccupantKind};

/// Interference increment per co-channel CellFi AP in the synthesized
/// network-listen survey, dB. Only the ordering matters to the
/// selector, so a fixed per-occupant penalty above the listen floor is
/// enough to rank channels by fleet occupancy.
const CO_CHANNEL_STEP_DB: f64 = 3.0;

/// Listen floor for an occupied channel in the synthesized survey.
const LISTEN_FLOOR_DBM: f64 = -95.0;

/// Configuration of a [`SpectrumFleet`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// TV channel plan all shards serve.
    pub plan: ChannelPlan,
    /// Regulatory profile applied to every shard database and every
    /// lifecycle (timing + EIRP envelope).
    pub profile: RuleProfile,
    /// Per-AP lifecycle tuning (cadence, backoff, margins).
    pub lifecycle: LifecycleConfig,
    /// Number of database shards (≥ 1).
    pub n_shards: usize,
    /// Mobile clients each AP answers for.
    pub clients_per_ap: u32,
    /// Availability-cache location quantum, metres.
    pub cache_quantum: f64,
    /// Availability-cache TTL (entries also die at lease expiry).
    pub cache_ttl: Duration,
    /// Spread of the deterministic per-AP activation jitter. `ZERO`
    /// disables desynchronization: all APs renew in lockstep.
    pub renew_spread: Duration,
    /// Accounting window for per-shard request rates.
    pub rate_window: Duration,
}

impl FleetConfig {
    /// A fleet config with the paper-default lifecycle under `profile`,
    /// sized for experiment sweeps: 8 shards, 500 m cache quantum,
    /// cache TTL of half the lifecycle poll, 1 s rate windows and a
    /// renewal spread of one poll interval.
    pub fn new(profile: RuleProfile, lifecycle: LifecycleConfig) -> FleetConfig {
        FleetConfig {
            plan: ChannelPlan::Eu,
            cache_ttl: Duration::from_micros(lifecycle.poll.as_micros() / 2),
            renew_spread: lifecycle.poll,
            profile,
            lifecycle,
            n_shards: 8,
            clients_per_ap: 4,
            cache_quantum: 500.0,
            rate_window: Duration::from_secs(1),
        }
    }
}

/// An observable fleet-level event, drained by the harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FleetEvent {
    /// A lifecycle transition on one AP.
    Lifecycle {
        /// AP index within the fleet.
        ap: u32,
        /// The transition.
        event: LifecycleEvent,
    },
    /// A shard's database entered a scheduled outage window.
    ShardOutage {
        /// The shard.
        shard: u32,
        /// When the outage window ends.
        until: Instant,
    },
    /// An availability query was served from the shard's cache.
    CacheHit {
        /// The shard.
        shard: u32,
        /// Age of the replayed response.
        age: Duration,
    },
    /// A per-shard rate window closed with at least one request.
    RenewBatch {
        /// The shard.
        shard: u32,
        /// Requests the shard served in the window.
        size: u32,
    },
    /// A fault fired on a shard's transport.
    Fault {
        /// The shard.
        shard: u32,
        /// [`crate::faults::FaultKind::code`] of the fault.
        kind: u32,
    },
}

/// One database shard: injector-wrapped backend, response cache and
/// request-rate accounting.
#[derive(Debug)]
struct Shard {
    injector: FaultInjector,
    cache: AvailabilityCache,
    /// Start of the currently accumulating rate window.
    window_start: Instant,
    /// Requests served in the current window.
    window_requests: u64,
    /// Largest completed window.
    peak_window: u64,
    /// All requests ever served (cache hits excluded — they never reach
    /// the shard).
    total_requests: u64,
    /// Completed windows.
    windows_closed: u64,
    /// Outage edge detector for `shard_outage` events.
    in_outage: bool,
}

impl Shard {
    fn note_request(&mut self) {
        self.window_requests += 1;
        self.total_requests += 1;
    }

    /// Close every rate window that ends at or before `now`, emitting
    /// `renew_batch` events for non-empty ones.
    fn close_windows(
        &mut self,
        shard_id: u32,
        now: Instant,
        window: Duration,
        events: &mut Vec<(Instant, FleetEvent)>,
    ) {
        while self.window_start + window <= now {
            let end = self.window_start + window;
            if self.window_requests > 0 {
                events.push((
                    end,
                    FleetEvent::RenewBatch {
                        shard: shard_id,
                        size: self.window_requests as u32,
                    },
                ));
            }
            self.peak_window = self.peak_window.max(self.window_requests);
            self.windows_closed += 1;
            self.window_requests = 0;
            self.window_start = end;
        }
    }
}

/// Per-AP bookkeeping around one lifecycle.
#[derive(Debug)]
struct ApState {
    lifecycle: LeaseLifecycle,
    location: GeoLocation,
    shard: usize,
    /// First tick at which this AP runs (desynchronization jitter).
    activation: Instant,
    /// Ground-truth audit: since when the AP has been transmitting on a
    /// channel its shard considers unavailable.
    unavailable_since: Option<Instant>,
    /// Ticks stepped (post-activation).
    ticks: u64,
    /// Ticks with regulatory permission to radiate.
    up_ticks: u64,
}

/// Aggregated fleet counters, computed by [`SpectrumFleet::finish`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetStats {
    /// Fleet size.
    pub aps: usize,
    /// Summed lifecycle counters across the fleet
    /// (`min_vacate_margin_us` is the fleet-wide minimum).
    pub lifecycles: LifecycleStats,
    /// Ticks where an AP transmitted on a channel that had been
    /// ground-truth-unavailable longer than the profile's vacate
    /// deadline. The fleet invariant: zero.
    pub lease_gate_breaches: u64,
    /// Availability probes served from shard caches.
    pub cache_hits: u64,
    /// Availability probes that reached a shard database.
    pub cache_misses: u64,
    /// Fraction of probes served from caches.
    pub cache_hit_rate: f64,
    /// Requests that reached shard databases (all PAWS methods).
    pub total_requests: u64,
    /// Largest single rate window on any shard (requests per window).
    pub peak_shard_rate: u64,
    /// Mean requests per rate window per shard.
    pub mean_shard_rate: f64,
    /// Mean per-AP uptime fraction (ticks with permission to radiate).
    pub uptime_mean: f64,
    /// 10th-percentile per-AP uptime fraction.
    pub uptime_p10: f64,
}

/// The fleet orchestrator. Construct with [`SpectrumFleet::new`], drive
/// with [`SpectrumFleet::step`] once per tick in ascending time order,
/// then call [`SpectrumFleet::finish`] exactly once at the horizon.
#[derive(Debug)]
pub struct SpectrumFleet {
    config: FleetConfig,
    aps: Vec<ApState>,
    shards: Vec<Shard>,
    events: Vec<(Instant, FleetEvent)>,
    breaches: u64,
    /// Reusable listen-survey buffer (one entry per occupied channel).
    listen: Vec<ListenObservation>,
}

/// SplitMix64 finalizer: the consistent AP→shard hash.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Snap a query location to its quantization cell's representative: the
/// cell centre, with an uncertainty disc covering the entire cell (so a
/// cached answer is conservative for every AP inside it).
fn snap_location(loc: &GeoLocation, quantum: f64) -> GeoLocation {
    let cx = (loc.x / quantum).floor() * quantum + quantum / 2.0;
    let cy = (loc.y / quantum).floor() * quantum + quantum / 2.0;
    GeoLocation {
        x: cx,
        y: cy,
        // Half the cell diagonal is quantum·√2/2 ≈ 0.708·quantum.
        uncertainty: loc.uncertainty.max(quantum * 0.71),
    }
}

/// The transport one AP sees: its shard's fault injector behind the
/// shard's response cache, with request-rate accounting.
struct ShardTransport<'a> {
    shard: &'a mut Shard,
    shard_id: u32,
    quantum: f64,
    events: &'a mut Vec<(Instant, FleetEvent)>,
}

impl PawsTransport for ShardTransport<'_> {
    fn init(&mut self, req: &InitReq, now: Instant) -> Result<InitResp, PawsFailure> {
        self.shard.note_request();
        self.shard.injector.init(req, now)
    }

    fn avail_spectrum(
        &mut self,
        req: &AvailSpectrumReq,
        now: Instant,
    ) -> Result<AvailSpectrumResp, PawsFailure> {
        let snapped = snap_location(&req.location, self.quantum);
        if let Some(resp) = self.shard.cache.get(&snapped, now) {
            let age = Duration::from_micros(now.as_micros().saturating_sub(resp.response_time_us));
            self.events.push((
                now,
                FleetEvent::CacheHit {
                    shard: self.shard_id,
                    age,
                },
            ));
            return Ok(resp);
        }
        self.shard.note_request();
        let snapped_req = AvailSpectrumReq {
            device: req.device.clone(),
            location: snapped,
            request_time_us: req.request_time_us,
        };
        let resp = self.shard.injector.avail_spectrum(&snapped_req, now)?;
        self.shard.cache.insert(&snapped, resp.clone(), now);
        Ok(resp)
    }

    fn notify_use(&mut self, notify: SpectrumUseNotify, now: Instant) -> Result<(), PawsFailure> {
        self.shard.note_request();
        self.shard.injector.notify_use(notify, now)
    }
}

impl SpectrumFleet {
    /// Build a fleet of `locations.len()` APs over `shard_plans.len()`
    /// shards (must equal `config.n_shards`). All randomness — shard
    /// assignment, activation jitter, per-AP backoff jitter — derives
    /// from `seeds`, so the same inputs replay byte-identically.
    pub fn new(
        config: FleetConfig,
        locations: &[GeoLocation],
        shard_plans: Vec<FaultPlan>,
        seeds: &SeedSeq,
    ) -> SpectrumFleet {
        assert!(config.n_shards >= 1, "a fleet has at least one shard");
        assert!(
            shard_plans.len() == config.n_shards,
            "one fault plan per shard"
        );
        let shards: Vec<Shard> = shard_plans
            .into_iter()
            .map(|plan| {
                let db = SpectrumDatabase::new(config.plan, vec![]).with_profile(&config.profile);
                Shard {
                    injector: FaultInjector::new(db, plan),
                    cache: AvailabilityCache::new(config.cache_quantum, config.cache_ttl),
                    window_start: Instant::ZERO,
                    window_requests: 0,
                    peak_window: 0,
                    total_requests: 0,
                    windows_closed: 0,
                    in_outage: false,
                }
            })
            .collect();
        let assign_seed = seeds.seed("shard-assign");
        let spread_us = config.renew_spread.as_micros();
        let aps: Vec<ApState> = locations
            .iter()
            .enumerate()
            .map(|(i, loc)| {
                let serial = format!("fleet-ap-{i:05}");
                let lifecycle = LeaseLifecycle::new(
                    &serial,
                    config.clients_per_ap,
                    *loc,
                    config.plan,
                    config.lifecycle,
                    seeds.seed_indexed("lease", i as u64),
                )
                .with_profile(&config.profile);
                let offset = if spread_us == 0 {
                    0
                } else {
                    seeds.seed_indexed("renew-jitter", i as u64) % spread_us
                };
                ApState {
                    lifecycle,
                    location: *loc,
                    shard: (mix64(i as u64 ^ assign_seed) % config.n_shards as u64) as usize,
                    activation: Instant::from_micros(offset),
                    unavailable_since: None,
                    ticks: 0,
                    up_ticks: 0,
                }
            })
            .collect();
        SpectrumFleet {
            config,
            aps,
            shards,
            events: Vec::new(),
            breaches: 0,
            listen: Vec::new(),
        }
    }

    /// Fleet size.
    pub fn n_aps(&self) -> usize {
        self.aps.len()
    }

    /// Which shard serves AP `ap`.
    pub fn shard_of(&self, ap: usize) -> usize {
        self.aps[ap].shard
    }

    /// The lifecycle of AP `ap`.
    pub fn lifecycle(&self, ap: usize) -> &LeaseLifecycle {
        &self.aps[ap].lifecycle
    }

    /// Regulatory permission of AP `ap` to radiate at `now`.
    pub fn may_transmit(&self, ap: usize, now: Instant) -> bool {
        self.aps[ap].lifecycle.may_transmit(now)
    }

    /// Mutable access to shard `s`'s database (tests script withdrawals
    /// and incumbent arrivals through this).
    pub fn shard_database_mut(&mut self, s: usize) -> &mut SpectrumDatabase {
        self.shards[s].injector.database_mut()
    }

    /// Ground-truth lease-gate breaches so far (the fleet invariant:
    /// zero).
    pub fn lease_gate_breaches(&self) -> u64 {
        self.breaches
    }

    /// Drain the fleet events accumulated since the last call, in
    /// emission order (time-ordered per AP and per shard).
    pub fn drain_events(&mut self) -> Vec<(Instant, FleetEvent)> {
        std::mem::take(&mut self.events)
    }

    /// Synthesize the shared network-listen survey from fleet-wide
    /// per-channel occupancy: every channel some AP operates on reads
    /// as CellFi-occupied, `CO_CHANNEL_STEP_DB` louder per occupant.
    fn build_listen(&mut self) {
        let mut counts: BTreeMap<ChannelId, u32> = BTreeMap::new();
        for ap in &self.aps {
            if let Some(ch) = ap.lifecycle.current_channel() {
                *counts.entry(ch).or_insert(0) += 1;
            }
        }
        self.listen.clear();
        for (channel, count) in counts {
            self.listen.push(ListenObservation {
                channel,
                energy: Dbm(LISTEN_FLOOR_DBM + CO_CHANNEL_STEP_DB * count as f64),
                occupant: OccupantKind::CellFi,
            });
        }
    }

    /// Advance the whole fleet to `now`: shard fault plans and rate
    /// windows first, then every active AP's lifecycle in index order
    /// (serial, so replay is byte-identical at any worker count), then
    /// the ground-truth compliance audit.
    pub fn step(&mut self, now: Instant) {
        let vacate_deadline = self.config.profile.vacate_deadline;
        let rate_window = self.config.rate_window;
        let quantum = self.config.cache_quantum;
        self.build_listen();
        let SpectrumFleet {
            aps,
            shards,
            events,
            breaches,
            listen,
            ..
        } = self;
        for (s, shard) in shards.iter_mut().enumerate() {
            shard.injector.advance_to(now);
            shard.close_windows(s as u32, now, rate_window, events);
            let in_outage = shard.injector.plan().in_outage(now);
            if in_outage && !shard.in_outage {
                let until = shard
                    .injector
                    .plan()
                    .outages
                    .iter()
                    .find(|&&(from, to)| from <= now && now < to)
                    .map(|&(_, to)| to)
                    .unwrap_or(now);
                events.push((
                    now,
                    FleetEvent::ShardOutage {
                        shard: s as u32,
                        until,
                    },
                ));
            }
            shard.in_outage = in_outage;
        }
        for (i, ap) in aps.iter_mut().enumerate() {
            if now < ap.activation {
                continue;
            }
            ap.ticks += 1;
            let mut transport = ShardTransport {
                shard: &mut shards[ap.shard],
                shard_id: ap.shard as u32,
                quantum,
                events,
            };
            ap.lifecycle.step(&mut transport, listen, now);
            for (t, event) in ap.lifecycle.drain_events() {
                events.push((
                    t,
                    FleetEvent::Lifecycle {
                        ap: i as u32,
                        event,
                    },
                ));
            }
            // Ground-truth audit: a transmitting AP's channel must not
            // have been unavailable longer than the vacate deadline.
            let on_air_channel = match ap.lifecycle.client().state() {
                ClientState::Operating { channel, .. } | ClientState::Vacating { channel, .. }
                    if ap.lifecycle.may_transmit(now) =>
                {
                    Some(channel)
                }
                _ => None,
            };
            if let Some(ch) = on_air_channel {
                ap.up_ticks += 1;
                let available =
                    shards[ap.shard]
                        .injector
                        .database()
                        .is_available(ch, ap.location.point(), now);
                if available {
                    ap.unavailable_since = None;
                } else {
                    let since = *ap.unavailable_since.get_or_insert(now);
                    if now.duration_since(since) > vacate_deadline {
                        *breaches += 1;
                    }
                }
            } else {
                ap.unavailable_since = None;
            }
        }
        for (s, shard) in shards.iter_mut().enumerate() {
            for (t, kind) in shard.injector.drain_faults() {
                events.push((
                    t,
                    FleetEvent::Fault {
                        shard: s as u32,
                        kind: kind.code(),
                    },
                ));
            }
        }
    }

    /// Close the books at the horizon: flush every shard's final rate
    /// window and aggregate the fleet counters.
    pub fn finish(&mut self, end: Instant) -> FleetStats {
        let rate_window = self.config.rate_window;
        let SpectrumFleet {
            aps,
            shards,
            events,
            breaches,
            ..
        } = self;
        for (s, shard) in shards.iter_mut().enumerate() {
            shard.close_windows(s as u32, end, rate_window, events);
            if shard.window_requests > 0 {
                // Count the trailing partial window toward peak/mean.
                shard.peak_window = shard.peak_window.max(shard.window_requests);
                shard.windows_closed += 1;
                shard.window_requests = 0;
            }
        }
        let mut lifecycles = LifecycleStats {
            min_vacate_margin_us: u64::MAX,
            ..LifecycleStats::default()
        };
        let mut uptimes: Vec<f64> = Vec::with_capacity(aps.len());
        for ap in aps.iter() {
            let s = ap.lifecycle.stats();
            lifecycles.renewals += s.renewals;
            lifecycles.vacates += s.vacates;
            lifecycles.degrades += s.degrades;
            lifecycles.recoveries += s.recoveries;
            lifecycles.backoffs += s.backoffs;
            lifecycles.missed_deadlines += s.missed_deadlines;
            lifecycles.min_vacate_margin_us =
                lifecycles.min_vacate_margin_us.min(s.min_vacate_margin_us);
            uptimes.push(if ap.ticks == 0 {
                0.0
            } else {
                ap.up_ticks as f64 / ap.ticks as f64
            });
        }
        uptimes.sort_by(f64::total_cmp);
        let (uptime_mean, uptime_p10) = if uptimes.is_empty() {
            (0.0, 0.0)
        } else {
            let mean = uptimes.iter().sum::<f64>() / uptimes.len() as f64;
            (mean, uptimes[(uptimes.len() - 1) / 10])
        };
        let cache_hits: u64 = shards.iter().map(|s| s.cache.hits()).sum();
        let cache_misses: u64 = shards.iter().map(|s| s.cache.misses()).sum();
        let probes = cache_hits + cache_misses;
        let total_requests: u64 = shards.iter().map(|s| s.total_requests).sum();
        let windows: u64 = shards.iter().map(|s| s.windows_closed).sum();
        FleetStats {
            aps: aps.len(),
            lifecycles,
            lease_gate_breaches: *breaches,
            cache_hits,
            cache_misses,
            cache_hit_rate: if probes == 0 {
                0.0
            } else {
                cache_hits as f64 / probes as f64
            },
            total_requests,
            peak_shard_rate: shards.iter().map(|s| s.peak_window).max().unwrap_or(0),
            mean_shard_rate: if windows == 0 {
                0.0
            } else {
                total_requests as f64 / windows as f64
            },
            uptime_mean,
            uptime_p10,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellfi_types::geo::Point;

    const TICK: Duration = Duration::from_millis(500);

    fn locations(n: usize) -> Vec<GeoLocation> {
        (0..n)
            .map(|i| {
                // A 4-km grid, 200 m pitch: several APs per cache cell.
                let x = (i % 20) as f64 * 200.0;
                let y = (i / 20) as f64 * 200.0;
                GeoLocation::gps(Point::new(100_000.0 + x, y))
            })
            .collect()
    }

    fn fast_config(profile: RuleProfile) -> FleetConfig {
        let mut lifecycle = LifecycleConfig::paper_default(30.0);
        lifecycle.poll = Duration::from_secs(2);
        lifecycle.backoff_base = Duration::from_millis(500);
        lifecycle.backoff_max = Duration::from_secs(4);
        lifecycle.vacate_margin = Duration::from_millis(500);
        FleetConfig {
            n_shards: 8,
            // One full poll interval: neighbours in a cell share answers.
            cache_ttl: Duration::from_secs(2),
            ..FleetConfig::new(
                profile.with_lease_validity(Duration::from_secs(15)),
                lifecycle,
            )
        }
    }

    fn run_fleet(
        config: FleetConfig,
        n_aps: usize,
        intensity: f64,
        horizon: Instant,
        master: u64,
    ) -> (FleetStats, Vec<(Instant, FleetEvent)>) {
        let seeds = SeedSeq::new(master).child("fleet-test");
        let plans: Vec<FaultPlan> = (0..config.n_shards)
            .map(|s| {
                FaultPlan::at_intensity(
                    seeds.seed_indexed("shard-faults", s as u64),
                    intensity,
                    horizon,
                )
            })
            .collect();
        let mut fleet = SpectrumFleet::new(config, &locations(n_aps), plans, &seeds);
        let mut t = Instant::ZERO;
        let mut events = Vec::new();
        while t < horizon {
            fleet.step(t);
            events.extend(fleet.drain_events());
            t += TICK;
        }
        (fleet.finish(horizon), events)
    }

    #[test]
    fn assignment_spreads_aps_over_every_shard() {
        let config = fast_config(RuleProfile::etsi());
        let seeds = SeedSeq::new(1).child("assign");
        let plans = vec![FaultPlan::none(); 8];
        let fleet = SpectrumFleet::new(config, &locations(64), plans, &seeds);
        let mut per_shard = [0usize; 8];
        for i in 0..fleet.n_aps() {
            per_shard[fleet.shard_of(i)] += 1;
        }
        assert!(per_shard.iter().all(|&n| n > 0), "{per_shard:?}");
        // Consistent: the same fleet built again assigns identically.
        let fleet2 = SpectrumFleet::new(
            fast_config(RuleProfile::etsi()),
            &locations(64),
            vec![FaultPlan::none(); 8],
            &SeedSeq::new(1).child("assign"),
        );
        for i in 0..fleet.n_aps() {
            assert_eq!(fleet.shard_of(i), fleet2.shard_of(i));
        }
    }

    #[test]
    fn healthy_fleet_runs_clean_and_caches_hard() {
        let horizon = Instant::from_secs(30);
        let (stats, events) = run_fleet(fast_config(RuleProfile::etsi()), 48, 0.0, horizon, 7);
        assert_eq!(stats.lifecycles.missed_deadlines, 0);
        assert_eq!(stats.lease_gate_breaches, 0);
        assert!(stats.lifecycles.renewals > 0);
        // Several APs share each 500 m cache cell, so the cache must
        // absorb a solid share of the availability probes.
        assert!(stats.cache_hits > 0, "{stats:?}");
        assert!(stats.cache_hit_rate > 0.3, "{stats:?}");
        assert!(events
            .iter()
            .any(|(_, e)| matches!(e, FleetEvent::CacheHit { .. })));
        assert!(events
            .iter()
            .any(|(_, e)| matches!(e, FleetEvent::RenewBatch { .. })));
        assert!(stats.uptime_mean > 0.8, "{stats:?}");
    }

    #[test]
    fn one_shard_outage_does_not_stall_the_fleet() {
        let config = fast_config(RuleProfile::etsi());
        let horizon = Instant::from_secs(40);
        let seeds = SeedSeq::new(3).child("outage");
        // Shard 0 is down for the entire run; the rest are healthy.
        let mut plans = vec![FaultPlan::none(); 8];
        plans[0].outages.push((Instant::ZERO, horizon));
        let mut fleet = SpectrumFleet::new(config, &locations(64), plans, &seeds);
        let mut t = Instant::ZERO;
        let mut events = Vec::new();
        while t < horizon {
            fleet.step(t);
            events.extend(fleet.drain_events());
            t += TICK;
        }
        let end = horizon - Duration::from_millis(1);
        let mut dark_shard_aps = 0;
        let mut lit_aps = 0;
        for i in 0..fleet.n_aps() {
            if fleet.shard_of(i) == 0 {
                dark_shard_aps += 1;
                assert!(
                    !fleet.may_transmit(i, end),
                    "AP {i} on the dark shard cannot hold a lease"
                );
            } else if fleet.may_transmit(i, end) {
                lit_aps += 1;
            }
        }
        assert!(dark_shard_aps > 0, "some APs must land on shard 0");
        assert!(
            lit_aps > 40,
            "healthy shards keep their tenants on the air: {lit_aps}"
        );
        assert!(events
            .iter()
            .any(|(_, e)| matches!(e, FleetEvent::ShardOutage { shard: 0, .. })));
        let stats = fleet.finish(horizon);
        assert_eq!(stats.lease_gate_breaches, 0);
        assert_eq!(stats.lifecycles.missed_deadlines, 0);
    }

    #[test]
    fn chaos_on_every_shard_stays_compliant() {
        let horizon = Instant::from_secs(40);
        let (stats, _) = run_fleet(fast_config(RuleProfile::etsi()), 64, 0.8, horizon, 11);
        assert_eq!(stats.lifecycles.missed_deadlines, 0, "{stats:?}");
        assert_eq!(stats.lease_gate_breaches, 0, "{stats:?}");
        assert!(stats.lifecycles.vacates > 0, "chaos must force vacates");
        assert!(stats.uptime_mean < 1.0);
    }

    #[test]
    fn fcc_profile_fleet_honors_its_own_deadline() {
        let horizon = Instant::from_secs(30);
        let (stats, _) = run_fleet(fast_config(RuleProfile::fcc()), 32, 0.6, horizon, 13);
        assert_eq!(stats.lifecycles.missed_deadlines, 0);
        assert_eq!(stats.lease_gate_breaches, 0);
    }

    #[test]
    fn desynchronized_renewals_cut_the_peak_rate() {
        let horizon = Instant::from_secs(30);
        let mut synced = fast_config(RuleProfile::etsi());
        synced.renew_spread = Duration::ZERO;
        let (sync_stats, _) = run_fleet(synced, 64, 0.0, horizon, 17);
        let (jittered_stats, _) = run_fleet(fast_config(RuleProfile::etsi()), 64, 0.0, horizon, 17);
        assert!(
            jittered_stats.peak_shard_rate < sync_stats.peak_shard_rate,
            "jitter {jittered_stats:?} vs storm {sync_stats:?}"
        );
    }

    #[test]
    fn fleet_replays_byte_identically_from_the_seed() {
        let horizon = Instant::from_secs(20);
        let (stats_a, events_a) = run_fleet(fast_config(RuleProfile::etsi()), 32, 0.7, horizon, 23);
        let (stats_b, events_b) = run_fleet(fast_config(RuleProfile::etsi()), 32, 0.7, horizon, 23);
        assert_eq!(stats_a, stats_b);
        assert_eq!(events_a, events_b);
        let (stats_c, events_c) = run_fleet(fast_config(RuleProfile::etsi()), 32, 0.7, horizon, 29);
        assert!(
            stats_a != stats_c || events_a != events_c,
            "seed must matter"
        );
    }

    #[test]
    fn occupancy_listen_spreads_the_fleet_across_channels() {
        let config = fast_config(RuleProfile::etsi());
        let horizon = Instant::from_secs(10);
        let seeds = SeedSeq::new(31).child("spread");
        let plans = vec![FaultPlan::none(); 8];
        let mut fleet = SpectrumFleet::new(config, &locations(40), plans, &seeds);
        let mut t = Instant::ZERO;
        while t < horizon {
            fleet.step(t);
            t += TICK;
        }
        let mut channels: std::collections::BTreeSet<ChannelId> = std::collections::BTreeSet::new();
        for i in 0..fleet.n_aps() {
            if let Some(ch) = fleet.lifecycle(i).current_channel() {
                channels.insert(ch);
            }
        }
        assert!(
            channels.len() > 1,
            "cross-channel assignment must not pile every AP on one grant: {channels:?}"
        );
    }
}
