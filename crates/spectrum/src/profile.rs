//! Regulatory rule profiles: the timing and EIRP envelope a geolocation
//! database enforces, as configuration instead of code forks.
//!
//! The paper's prototype runs under the ETSI EN 301 598 harmonized
//! standard (60 s vacate deadline, 15 min availability re-check), but
//! the same CellFi stack must deploy under FCC Part 15 Subpart H rules
//! where the timing envelope is much looser (daily re-check) and the
//! portable-device EIRP cap is lower. A [`RuleProfile`] captures the
//! parameters that differ; [`crate::database::SpectrumDatabase`] and
//! [`crate::lifecycle::LeaseLifecycle`] both consume one, so switching
//! regulatory domains is a config swap, not a fork of the lease
//! machinery.

use cellfi_types::time::Duration;

/// The regulatory parameters a spectrum database advertises and a lease
/// lifecycle must honor. Constructors are the two domains the paper's
/// deployment story spans; all fields are public so experiments can
/// derive compressed variants for short-horizon sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleProfile {
    /// Short profile name used in experiment labels (`"etsi"`, `"fcc"`).
    pub name: &'static str,
    /// Ruleset identifier returned in the PAWS `INIT_RESP`.
    pub ruleset_id: &'static str,
    /// How long a device may keep transmitting after its last confirmed
    /// availability response once the channel becomes unavailable.
    pub vacate_deadline: Duration,
    /// Maximum EIRP the database will grant, in dBm.
    pub max_eirp_dbm: f64,
    /// Maximum polling interval the database advertises, in seconds.
    pub max_polling_secs: u64,
    /// Validity window of a granted lease.
    pub lease_validity: Duration,
}

impl RuleProfile {
    /// ETSI EN 301 598 style parameters — byte-identical to the
    /// defaults the single-AP client has always used: 60 s vacate
    /// deadline, 36 dBm EIRP cap, 15 min max polling, 2 h leases.
    pub fn etsi() -> RuleProfile {
        RuleProfile {
            name: "etsi",
            ruleset_id: "ETSI-EN-301-598-1.1.1",
            vacate_deadline: Duration::from_secs(60),
            max_eirp_dbm: 36.0,
            max_polling_secs: 900,
            lease_validity: Duration::from_secs(2 * 3600),
        }
    }

    /// FCC Part 15 Subpart H style parameters: fixed devices re-check
    /// daily and hold 24 h leases, but the portable-class EIRP cap is
    /// 30 dBm and the vacate envelope is a looser 2 min.
    pub fn fcc() -> RuleProfile {
        RuleProfile {
            name: "fcc",
            ruleset_id: "FCC-Part15-SubpartH-2019",
            vacate_deadline: Duration::from_secs(120),
            max_eirp_dbm: 30.0,
            max_polling_secs: 86_400,
            lease_validity: Duration::from_secs(24 * 3600),
        }
    }

    /// The same profile with its lease validity compressed to `validity`
    /// — experiment sweeps shorten leases so renewals happen inside a
    /// seconds-long horizon while the regulatory timing stays intact.
    pub fn with_lease_validity(mut self, validity: Duration) -> RuleProfile {
        self.lease_validity = validity;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn etsi_profile_matches_historical_defaults() {
        let p = RuleProfile::etsi();
        assert_eq!(p.ruleset_id, "ETSI-EN-301-598-1.1.1");
        assert_eq!(p.vacate_deadline, crate::client::ETSI_VACATE_DEADLINE);
        assert_eq!(p.max_eirp_dbm, 36.0);
        assert_eq!(p.max_polling_secs, 900);
        assert_eq!(p.lease_validity, Duration::from_secs(7200));
    }

    #[test]
    fn fcc_profile_differs_in_timing_and_eirp() {
        let etsi = RuleProfile::etsi();
        let fcc = RuleProfile::fcc();
        assert_ne!(etsi.ruleset_id, fcc.ruleset_id);
        assert!(fcc.vacate_deadline > etsi.vacate_deadline);
        assert!(fcc.max_eirp_dbm < etsi.max_eirp_dbm);
        assert!(fcc.max_polling_secs > etsi.max_polling_secs);
        assert!(fcc.lease_validity > etsi.lease_validity);
    }

    #[test]
    fn lease_validity_compression_keeps_regulatory_timing() {
        let p = RuleProfile::fcc().with_lease_validity(Duration::from_secs(15));
        assert_eq!(p.lease_validity, Duration::from_secs(15));
        assert_eq!(p.vacate_deadline, Duration::from_secs(120));
    }
}
