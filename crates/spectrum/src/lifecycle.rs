//! The resilient lease lifecycle.
//!
//! [`crate::client::DatabaseClient`] enforces the regulatory mechanics
//! of one lease; this module wraps it in the policy that keeps an AP
//! *compliant and on the air while the world misbehaves*: proactive
//! renewal at a configurable fraction of the lease lifetime,
//! deterministic retry with exponentially backed-off, seeded-jitter
//! delays (simulation clock only — no wall clock, no ambient entropy),
//! and a graceful-degradation ladder when faults pile up:
//!
//! 1. **retry** the PAWS exchange under backoff while the current lease
//!    is still valid;
//! 2. **fall back** to the next-best granted channel from the
//!    network-listen ranking in [`crate::selection`] when the channel
//!    itself is withdrawn;
//! 3. **reduce EIRP** to the surviving grant's cap when full power is
//!    no longer authorized;
//! 4. **vacate** with non-negative margin against
//!    [`ETSI_VACATE_DEADLINE`] when nothing survives.
//!
//! The ladder's safety rule makes the compliance property provable
//! under *arbitrary* fault schedules: the AP transmits only within
//! [`ETSI_VACATE_DEADLINE`] minus the configured margin of its last
//! successful availability confirmation. A channel withdrawn the
//! instant after a confirmation is therefore radiated on for strictly
//! less than the ETSI minute, no matter what the database does next.

use crate::client::{ClientState, DatabaseClient, OperationError, ETSI_VACATE_DEADLINE};
use crate::faults::PawsTransport;
use crate::paws::GeoLocation;
use crate::plan::ChannelPlan;
use crate::selection::{ChannelSelector, ListenObservation};
use cellfi_types::time::{Duration, Instant};
use cellfi_types::ChannelId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Phase of the resilient lifecycle. Regulatory *permission* to radiate
/// is always [`LeaseLifecycle::may_transmit`] (delegating to the
/// underlying client); the phase describes the policy posture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeasePhase {
    /// No lease; acquiring (or waiting for the next attempt).
    Idle,
    /// Operating normally under a valid lease at full requested EIRP.
    Operating,
    /// A renewal attempt is in flight (transient within one step).
    Renewing,
    /// The last exchange failed; waiting out an exponential backoff
    /// while the current lease, if any, keeps running.
    Backoff,
    /// Operating in a degraded configuration: a fallback channel
    /// and/or reduced EIRP.
    Degraded,
    /// Vacated; off the air until reacquisition succeeds.
    Vacated,
}

/// Which rung of the degradation ladder fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeStep {
    /// Switched to the next-best granted channel after losing the one
    /// in use.
    ChannelFallback,
    /// Operating below the requested EIRP because the surviving grant's
    /// cap is lower.
    EirpReduction,
    /// Vacated preemptively: the availability confirmation went stale
    /// (database unreachable) and the conservative ETSI window ran out.
    PreemptiveVacate,
}

impl DegradeStep {
    /// Stable numeric code for trace events.
    pub fn code(self) -> u32 {
        match self {
            DegradeStep::ChannelFallback => 0,
            DegradeStep::EirpReduction => 1,
            DegradeStep::PreemptiveVacate => 2,
        }
    }
}

/// One observable lifecycle transition, for traces and metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LifecycleEvent {
    /// A lease was acquired and operation started.
    Acquired {
        /// Channel now in use.
        channel: ChannelId,
        /// Lease expiry.
        expires: Instant,
        /// Authorized EIRP in use, dBm.
        eirp_dbm: f64,
    },
    /// The lease on the operating channel was renewed/confirmed.
    Renewed {
        /// Channel confirmed.
        channel: ChannelId,
        /// New lease expiry.
        expires: Instant,
    },
    /// An exchange failed; retrying after a backed-off delay.
    BackedOff {
        /// Consecutive failures so far.
        attempt: u32,
        /// When the next attempt is scheduled.
        resume_at: Instant,
    },
    /// A degradation-ladder rung fired.
    Degraded {
        /// The rung.
        step: DegradeStep,
        /// The channel the AP is on after the rung (the vacated channel
        /// for [`DegradeStep::PreemptiveVacate`]).
        channel: ChannelId,
    },
    /// Recovered from backoff/degradation to normal operation.
    Recovered {
        /// Channel operating on after recovery.
        channel: ChannelId,
    },
    /// Stopped transmitting on a channel.
    Vacated {
        /// The vacated channel.
        channel: ChannelId,
        /// Margin left before the applicable deadline. Saturated at
        /// zero; a missed deadline also increments
        /// [`LifecycleStats::missed_deadlines`].
        margin: Duration,
    },
}

/// Tuning of the resilient lifecycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifecycleConfig {
    /// EIRP the AP wants to operate at, dBm.
    pub eirp_dbm: f64,
    /// Steady-state re-confirmation cadence. Must be comfortably under
    /// [`ETSI_VACATE_DEADLINE`] so a withdrawal is noticed with margin.
    pub poll: Duration,
    /// Renew proactively once this fraction of the lease lifetime has
    /// elapsed (also bounded by `poll`).
    pub renew_fraction: f64,
    /// First retry delay after a failure.
    pub backoff_base: Duration,
    /// Retry delay cap.
    pub backoff_max: Duration,
    /// Jitter applied to each backoff delay, as a fraction (±).
    pub jitter_frac: f64,
    /// Stop this long before any vacate deadline.
    pub vacate_margin: Duration,
}

impl LifecycleConfig {
    /// Defaults mirroring the paper's AP behaviour (it polled every few
    /// seconds and stopped 2 s after noticing the withdrawal).
    pub fn paper_default(eirp_dbm: f64) -> LifecycleConfig {
        LifecycleConfig {
            eirp_dbm,
            poll: Duration::from_secs(15),
            renew_fraction: 0.5,
            backoff_base: Duration::from_secs(2),
            backoff_max: Duration::from_secs(30),
            jitter_frac: 0.25,
            vacate_margin: Duration::from_secs(2),
        }
    }
}

/// Counters the lifecycle accumulates for metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LifecycleStats {
    /// Successful renewals/confirmations while operating.
    pub renewals: u64,
    /// Times the AP stopped transmitting on a channel.
    pub vacates: u64,
    /// Degradation-ladder rungs fired.
    pub degrades: u64,
    /// Recoveries back to normal operation.
    pub recoveries: u64,
    /// Failed exchanges that scheduled a backed-off retry.
    pub backoffs: u64,
    /// Vacates that happened *after* their deadline (compliance
    /// violations; must stay zero).
    pub missed_deadlines: u64,
    /// Smallest vacate margin observed, µs (`u64::MAX` until the first
    /// vacate).
    pub min_vacate_margin_us: u64,
}

impl LifecycleStats {
    fn new() -> LifecycleStats {
        LifecycleStats {
            min_vacate_margin_us: u64::MAX,
            ..LifecycleStats::default()
        }
    }
}

/// The resilient lease lifecycle of one AP: a [`DatabaseClient`] plus
/// renewal, backoff and degradation policy. Drive it with
/// [`LeaseLifecycle::step`] once per simulation tick.
#[derive(Debug, Clone)]
pub struct LeaseLifecycle {
    client: DatabaseClient,
    selector: ChannelSelector,
    config: LifecycleConfig,
    phase: LeasePhase,
    rng: StdRng,
    /// PAWS INIT completed.
    initialized: bool,
    /// Consecutive failed exchanges.
    attempt: u32,
    /// Next instant the lifecycle will touch the transport.
    next_action: Instant,
    /// Last time the operating channel was confirmed available by a
    /// successful exchange — anchored at the *response computation*
    /// time, so a cached (replayed) answer ages the window correctly.
    last_confirmed: Instant,
    /// Regulatory vacate deadline the confidence window is built from
    /// (ETSI minute by default; profiles may differ).
    vacate_deadline: Duration,
    /// EIRP currently notified/authorized, dBm.
    eirp_dbm: f64,
    /// Pending observable transitions, drained by the harness.
    events: Vec<(Instant, LifecycleEvent)>,
    stats: LifecycleStats,
}

impl LeaseLifecycle {
    /// A lifecycle for an AP at `location` answering for `clients`
    /// devices, selecting channels over `plan`. `seed` drives only the
    /// backoff jitter — the simulation clock drives everything else.
    pub fn new(
        serial: &str,
        clients: u32,
        location: GeoLocation,
        plan: ChannelPlan,
        config: LifecycleConfig,
        seed: u64,
    ) -> LeaseLifecycle {
        LeaseLifecycle {
            client: DatabaseClient::new(serial, clients, location),
            selector: ChannelSelector::new(plan),
            config,
            phase: LeasePhase::Idle,
            rng: StdRng::seed_from_u64(seed),
            initialized: false,
            attempt: 0,
            next_action: Instant::ZERO,
            last_confirmed: Instant::ZERO,
            vacate_deadline: ETSI_VACATE_DEADLINE,
            eirp_dbm: config.eirp_dbm,
            events: Vec::new(),
            stats: LifecycleStats::new(),
        }
    }

    /// Adopt a regulatory rule profile: the vacate deadline the safety
    /// rule and the underlying client enforce comes from `profile`
    /// instead of the ETSI default. EIRP and cadence stay with
    /// [`LifecycleConfig`]; the profile governs only regulatory timing
    /// here.
    pub fn with_profile(mut self, profile: &crate::profile::RuleProfile) -> LeaseLifecycle {
        self.vacate_deadline = profile.vacate_deadline;
        self.client = self.client.with_vacate_deadline(profile.vacate_deadline);
        self
    }

    /// Current policy phase.
    pub fn phase(&self) -> LeasePhase {
        self.phase
    }

    /// The underlying regulatory client.
    pub fn client(&self) -> &DatabaseClient {
        &self.client
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> LifecycleStats {
        self.stats
    }

    /// The channel currently operated on, if any.
    pub fn current_channel(&self) -> Option<ChannelId> {
        match self.client.state() {
            ClientState::Operating { channel, .. } => Some(channel),
            _ => None,
        }
    }

    /// EIRP currently in use, dBm (meaningful while operating).
    pub fn eirp_dbm(&self) -> f64 {
        self.eirp_dbm
    }

    /// Regulatory permission to radiate at `now`.
    pub fn may_transmit(&self, now: Instant) -> bool {
        self.client.may_transmit(now)
    }

    /// Drain the observable transitions emitted since the last call.
    pub fn drain_events(&mut self) -> Vec<(Instant, LifecycleEvent)> {
        std::mem::take(&mut self.events)
    }

    /// The conservative stop deadline: the last availability
    /// confirmation plus the profile's vacate window (the ETSI minute
    /// by default). Transmitting past this point would risk radiating
    /// longer than the window after an unobserved withdrawal, so the
    /// ladder vacates before it. The anchor is the response's
    /// *computation* time ([`DatabaseClient::last_response_time`]), so
    /// an availability cache replaying an old answer cannot stretch
    /// the window.
    fn confidence_deadline(&self) -> Instant {
        self.last_confirmed + self.vacate_deadline
    }

    /// The anchor for the confidence window after a successful
    /// exchange: when the database computed the answer (equals `now`
    /// against a live database, older through a cache).
    fn confirmation_anchor(&self, now: Instant) -> Instant {
        self.client.last_response_time().unwrap_or(now)
    }

    /// Advance the lifecycle at `now`: expiry checks every tick, and
    /// transport work (renewal, retries, reacquisition) when due.
    /// `listen` is the AP's current network-listen survey, used to rank
    /// fallback channels.
    pub fn step<T: PawsTransport>(
        &mut self,
        transport: &mut T,
        listen: &[ListenObservation],
        now: Instant,
    ) {
        // In-lease expiry between polls.
        self.client.tick(now);
        if let ClientState::Vacating { channel, deadline } = self.client.state() {
            // The lease is gone (expiry, or a withdrawal noticed by a
            // refresh outside this step). Stop immediately — margin is
            // whatever is left of the ETSI window.
            self.record_vacate(channel, deadline, now);
            self.phase = LeasePhase::Vacated;
            self.next_action = now; // try to reacquire right away
        }
        // Ladder rung 4 (safety rule): operating with a stale
        // availability confirmation → preemptive vacate with margin.
        if let ClientState::Operating { channel, .. } = self.client.state() {
            let vacate_by = self.confidence_deadline() - self.config.vacate_margin;
            if now >= vacate_by {
                self.stats.degrades += 1;
                self.events.push((
                    now,
                    LifecycleEvent::Degraded {
                        step: DegradeStep::PreemptiveVacate,
                        channel,
                    },
                ));
                self.record_vacate(channel, self.confidence_deadline(), now);
                self.phase = LeasePhase::Vacated;
                self.next_action = now;
            }
        }
        if now < self.next_action {
            return;
        }
        match self.client.state() {
            ClientState::Idle => self.try_acquire(transport, listen, now),
            ClientState::Operating { .. } => self.try_renew(transport, listen, now),
            // Vacating is resolved above; nothing to do mid-step.
            ClientState::Vacating { .. } => {}
        }
    }

    /// [`Self::step`] bracketed by the `lease_step` profiler span, for
    /// harnesses that carry an observability bundle.
    pub fn step_profiled<T: PawsTransport>(
        &mut self,
        transport: &mut T,
        listen: &[ListenObservation],
        now: Instant,
        profiler: &mut cellfi_obs::Profiler,
    ) {
        profiler.begin(cellfi_obs::SpanId::LeaseStep);
        self.step(transport, listen, now);
        profiler.end(cellfi_obs::SpanId::LeaseStep);
    }

    /// Stop transmitting on `channel`, recording the margin against
    /// `deadline` (saturated at zero; misses are counted).
    fn record_vacate(&mut self, channel: ChannelId, deadline: Instant, now: Instant) {
        let margin = if now <= deadline {
            deadline - now
        } else {
            self.stats.missed_deadlines += 1;
            Duration::ZERO
        };
        self.stats.vacates += 1;
        self.stats.min_vacate_margin_us = self.stats.min_vacate_margin_us.min(margin.as_micros());
        self.client.confirm_stopped();
        self.events
            .push((now, LifecycleEvent::Vacated { channel, margin }));
    }

    /// A failed exchange: schedule the next attempt with exponential
    /// backoff and seeded jitter.
    fn back_off(&mut self, now: Instant) {
        self.attempt = self.attempt.saturating_add(1);
        let shift = (self.attempt - 1).min(16);
        let base_us = self
            .config
            .backoff_base
            .as_micros()
            .saturating_mul(1u64 << shift)
            .min(self.config.backoff_max.as_micros());
        // Jitter in [1 - j, 1 + j], drawn from the seeded stream.
        let j = self.config.jitter_frac;
        let factor = 1.0 + j * (2.0 * self.rng.gen::<f64>() - 1.0);
        let delay = Duration::from_micros((base_us as f64 * factor) as u64);
        self.next_action = now + delay;
        self.phase = LeasePhase::Backoff;
        self.stats.backoffs += 1;
        self.events.push((
            now,
            LifecycleEvent::BackedOff {
                attempt: self.attempt,
                resume_at: self.next_action,
            },
        ));
    }

    /// Schedule the next steady-state confirmation while operating.
    fn schedule_confirmation(&mut self, now: Instant, expires: Instant) {
        let lease_left = if expires > now {
            expires - now
        } else {
            Duration::ZERO
        };
        let renew_in = Duration::from_micros(
            (lease_left.as_micros() as f64 * self.config.renew_fraction) as u64,
        );
        self.next_action = now + renew_in.min(self.config.poll);
    }

    /// Acquire a lease from scratch: INIT if needed, query, rank, and
    /// start operation on the best granted channel.
    fn try_acquire<T: PawsTransport>(
        &mut self,
        transport: &mut T,
        listen: &[ListenObservation],
        now: Instant,
    ) {
        if !self.initialized {
            match self.client.init(transport, now) {
                Ok(_) => self.initialized = true,
                Err(_) => {
                    self.back_off(now);
                    return;
                }
            }
        }
        match self.client.refresh(transport, now) {
            Ok(_) => {}
            Err(_) => {
                self.back_off(now);
                return;
            }
        }
        self.attempt = 0;
        let grants = self.client.grants().to_vec();
        let Some(choice) = self.selector.choose(&grants, &grants, listen, now) else {
            // Transport fine, nothing granted here: poll again later.
            self.phase = if self.phase == LeasePhase::Vacated {
                LeasePhase::Vacated
            } else {
                LeasePhase::Idle
            };
            self.next_action = now + self.config.poll;
            return;
        };
        let eirp = self.config.eirp_dbm.min(choice.max_eirp_dbm);
        match self
            .client
            .start_operation(transport, choice.channel, eirp, now)
        {
            Ok(()) => {
                self.eirp_dbm = eirp;
                self.last_confirmed = self.confirmation_anchor(now);
                self.events.push((
                    now,
                    LifecycleEvent::Acquired {
                        channel: choice.channel,
                        expires: choice.expires,
                        eirp_dbm: eirp,
                    },
                ));
                if eirp < self.config.eirp_dbm {
                    // Ladder rung 3: the surviving grant caps us below
                    // the requested power.
                    self.stats.degrades += 1;
                    self.phase = LeasePhase::Degraded;
                    self.events.push((
                        now,
                        LifecycleEvent::Degraded {
                            step: DegradeStep::EirpReduction,
                            channel: choice.channel,
                        },
                    ));
                } else {
                    self.phase = LeasePhase::Operating;
                }
                self.schedule_confirmation(now, choice.expires);
            }
            Err(OperationError::NotifyFailed(_)) => self.back_off(now),
            Err(_) => {
                // Grant vanished between ranking and start (e.g. truncated
                // list): poll again rather than spin.
                self.phase = LeasePhase::Idle;
                self.next_action = now + self.config.poll;
            }
        }
    }

    /// Confirm/renew the lease on the operating channel, falling down
    /// the ladder when the channel was withdrawn.
    fn try_renew<T: PawsTransport>(
        &mut self,
        transport: &mut T,
        listen: &[ListenObservation],
        now: Instant,
    ) {
        let was = self.phase;
        self.phase = LeasePhase::Renewing;
        match self.client.refresh(transport, now) {
            Err(_) => {
                // Lease still valid; keep operating under backoff. The
                // confidence deadline bounds how long this can go on.
                self.back_off(now);
            }
            Ok(ClientState::Operating { channel, expires }) => {
                self.last_confirmed = self.confirmation_anchor(now);
                self.attempt = 0;
                self.stats.renewals += 1;
                self.events
                    .push((now, LifecycleEvent::Renewed { channel, expires }));
                let recovered = self.try_upgrade(transport, listen, channel, now);
                let channel = self.current_channel().unwrap_or(channel);
                if recovered || was == LeasePhase::Backoff {
                    if self.phase_is_degraded() {
                        self.phase = LeasePhase::Degraded;
                    } else {
                        if was != LeasePhase::Operating {
                            self.stats.recoveries += 1;
                            self.events
                                .push((now, LifecycleEvent::Recovered { channel }));
                        }
                        self.phase = LeasePhase::Operating;
                    }
                } else if was == LeasePhase::Degraded {
                    self.phase = LeasePhase::Degraded;
                } else {
                    self.phase = LeasePhase::Operating;
                }
                if let ClientState::Operating { expires, .. } = self.client.state() {
                    self.schedule_confirmation(now, expires);
                }
            }
            Ok(ClientState::Vacating { channel, deadline }) => {
                // Ladder rung 2: the channel was withdrawn. Stop on it
                // now (full margin) and fall back to the next-best
                // granted channel from the listen ranking.
                self.record_vacate(channel, deadline, now);
                self.fall_back(transport, listen, channel, now);
            }
            Ok(ClientState::Idle) => {
                // Unreachable in practice: refresh never moves
                // Operating → Idle. Re-enter acquisition.
                self.phase = LeasePhase::Idle;
                self.next_action = now;
            }
        }
    }

    /// Whether the current operating point is still degraded (below the
    /// requested EIRP).
    fn phase_is_degraded(&self) -> bool {
        self.eirp_dbm < self.config.eirp_dbm
    }

    /// While renewed and degraded: try to climb back up the ladder —
    /// switch to the selector's top choice (e.g. the original channel
    /// after reinstatement) or restore full EIRP on the current one.
    /// Returns whether an upgrade happened.
    fn try_upgrade<T: PawsTransport>(
        &mut self,
        transport: &mut T,
        listen: &[ListenObservation],
        current: ChannelId,
        now: Instant,
    ) -> bool {
        if self.phase != LeasePhase::Renewing && !self.phase_is_degraded() {
            return false;
        }
        let grants = self.client.grants().to_vec();
        let Some(choice) = self.selector.choose(&grants, &grants, listen, now) else {
            return false;
        };
        let want_eirp = self.config.eirp_dbm.min(choice.max_eirp_dbm);
        let better_channel = choice.channel != current && self.was_fallback();
        let better_power = choice.channel == current && want_eirp > self.eirp_dbm;
        if !better_channel && !better_power {
            return false;
        }
        match self
            .client
            .start_operation(transport, choice.channel, want_eirp, now)
        {
            Ok(()) => {
                self.eirp_dbm = want_eirp;
                true
            }
            // Upgrade is opportunistic: failure leaves the current
            // (still valid) configuration in place.
            Err(_) => false,
        }
    }

    /// Whether the AP is on a fallback channel (degraded for a reason
    /// other than EIRP).
    fn was_fallback(&self) -> bool {
        self.phase == LeasePhase::Degraded || self.phase == LeasePhase::Renewing
    }

    /// Ladder rung 2/3: choose the next-best granted channel (the
    /// withdrawn one is no longer granted) and move there, reducing
    /// EIRP to its cap if need be; rung 4 (vacated, off the air) when
    /// nothing survives.
    fn fall_back<T: PawsTransport>(
        &mut self,
        transport: &mut T,
        listen: &[ListenObservation],
        lost: ChannelId,
        now: Instant,
    ) {
        let grants = self.client.grants().to_vec();
        let fallback = self
            .selector
            .choose(&grants, &grants, listen, now)
            .filter(|c| c.channel != lost);
        let Some(choice) = fallback else {
            self.phase = LeasePhase::Vacated;
            self.next_action = now + self.config.poll;
            return;
        };
        let eirp = self.config.eirp_dbm.min(choice.max_eirp_dbm);
        match self
            .client
            .start_operation(transport, choice.channel, eirp, now)
        {
            Ok(()) => {
                self.eirp_dbm = eirp;
                self.last_confirmed = self.confirmation_anchor(now);
                self.attempt = 0;
                self.stats.degrades += 1;
                self.phase = LeasePhase::Degraded;
                self.events.push((
                    now,
                    LifecycleEvent::Degraded {
                        step: DegradeStep::ChannelFallback,
                        channel: choice.channel,
                    },
                ));
                if eirp < self.config.eirp_dbm {
                    self.stats.degrades += 1;
                    self.events.push((
                        now,
                        LifecycleEvent::Degraded {
                            step: DegradeStep::EirpReduction,
                            channel: choice.channel,
                        },
                    ));
                }
                self.schedule_confirmation(now, choice.expires);
            }
            Err(OperationError::NotifyFailed(_)) => {
                // Can't notify the switch: off the air, retry later.
                self.phase = LeasePhase::Vacated;
                self.back_off(now);
            }
            Err(_) => {
                self.phase = LeasePhase::Vacated;
                self.next_action = now + self.config.poll;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::SpectrumDatabase;
    use crate::faults::{FaultInjector, FaultPlan};
    use crate::selection::OccupantKind;
    use cellfi_types::geo::Point;
    use cellfi_types::units::Dbm;

    const TICK: Duration = Duration::from_secs(1);

    fn lifecycle(eirp: f64) -> LeaseLifecycle {
        LeaseLifecycle::new(
            "cellfi-ap-001",
            8,
            GeoLocation::gps(Point::new(100_000.0, 0.0)),
            ChannelPlan::Eu,
            LifecycleConfig::paper_default(eirp),
            7,
        )
    }

    fn run(
        lc: &mut LeaseLifecycle,
        inj: &mut FaultInjector,
        from: Instant,
        until: Instant,
    ) -> Vec<(Instant, LifecycleEvent)> {
        let mut events = Vec::new();
        let mut t = from;
        while t < until {
            inj.advance_to(t);
            lc.step(inj, &[], t);
            events.extend(lc.drain_events());
            t += TICK;
        }
        events
    }

    #[test]
    fn happy_path_acquires_and_renews() {
        let mut lc = lifecycle(30.0);
        let mut inj = FaultInjector::new(
            SpectrumDatabase::new(ChannelPlan::Eu, vec![]),
            FaultPlan::none(),
        );
        let events = run(&mut lc, &mut inj, Instant::ZERO, Instant::from_secs(120));
        assert_eq!(lc.phase(), LeasePhase::Operating);
        assert!(lc.may_transmit(Instant::from_secs(120)));
        assert!(matches!(events[0].1, LifecycleEvent::Acquired { .. }));
        // 15 s poll over 2 minutes: several confirmations.
        assert!(lc.stats().renewals >= 5, "{:?}", lc.stats());
        assert_eq!(lc.stats().vacates, 0);
        assert_eq!(lc.stats().missed_deadlines, 0);
    }

    #[test]
    fn outage_longer_than_window_forces_preemptive_vacate_then_recovery() {
        let mut lc = lifecycle(30.0);
        let mut plan = FaultPlan::none();
        // Unreachable from t=30 s for 120 s: the confidence window (58 s)
        // runs out mid-outage.
        plan.outages
            .push((Instant::from_secs(30), Instant::from_secs(150)));
        let mut inj = FaultInjector::new(SpectrumDatabase::new(ChannelPlan::Eu, vec![]), plan);
        let events = run(&mut lc, &mut inj, Instant::ZERO, Instant::from_secs(200));
        let vacated: Vec<_> = events
            .iter()
            .filter_map(|(t, e)| match e {
                LifecycleEvent::Vacated { margin, .. } => Some((*t, *margin)),
                _ => None,
            })
            .collect();
        assert_eq!(vacated.len(), 1, "{events:?}");
        let (at, margin) = vacated[0];
        // Vacated before the confidence deadline (last confirm ≤ 30 s,
        // so stop by ~88 s), with non-negative margin.
        assert!(at < Instant::from_secs(95), "vacated at {at:?}");
        assert!(margin >= Duration::from_secs(1), "margin {margin:?}");
        assert_eq!(lc.stats().missed_deadlines, 0);
        assert!(lc.stats().backoffs > 0, "retries under outage");
        // After the outage ends the AP reacquires.
        assert!(lc.may_transmit(Instant::from_secs(200)));
        assert!(events
            .iter()
            .any(|(t, e)| *t >= Instant::from_secs(150)
                && matches!(e, LifecycleEvent::Acquired { .. })));
    }

    #[test]
    fn revocation_falls_back_to_next_best_channel() {
        let mut lc = lifecycle(30.0);
        let mut plan = FaultPlan::none();
        plan.revocations.push((Instant::from_secs(40), None));
        plan.revocation_hold = Duration::from_secs(100);
        let mut inj = FaultInjector::new(SpectrumDatabase::new(ChannelPlan::Eu, vec![]), plan);
        let events = run(&mut lc, &mut inj, Instant::ZERO, Instant::from_secs(70));
        let first = match events[0].1 {
            LifecycleEvent::Acquired { channel, .. } => channel,
            ref other => panic!("expected Acquired first, got {other:?}"),
        };
        // The withdrawn channel was vacated with essentially the whole
        // ETSI minute of margin, and a different channel took over.
        let vacated: Vec<_> = events
            .iter()
            .filter_map(|(_, e)| match e {
                LifecycleEvent::Vacated { channel, margin } => Some((*channel, *margin)),
                _ => None,
            })
            .collect();
        assert_eq!(vacated.len(), 1, "{events:?}");
        assert_eq!(vacated[0].0, first);
        assert!(vacated[0].1 >= Duration::from_secs(59));
        assert!(events.iter().any(|(_, e)| matches!(
            e,
            LifecycleEvent::Degraded {
                step: DegradeStep::ChannelFallback,
                ..
            }
        )));
        let now_ch = lc.current_channel().expect("operating on the fallback");
        assert_ne!(now_ch, first);
        assert!(lc.may_transmit(Instant::from_secs(69)));
    }

    #[test]
    fn fallback_prefers_listen_ranking() {
        let mut lc = lifecycle(30.0);
        let mut plan = FaultPlan::none();
        plan.revocations.push((Instant::from_secs(30), None));
        let mut inj = FaultInjector::new(SpectrumDatabase::new(ChannelPlan::Eu, vec![]), plan);
        // Mark every channel foreign-occupied except 47 (idle, quiet).
        let listen: Vec<ListenObservation> = ChannelPlan::Eu
            .channels()
            .iter()
            .map(|ch| ListenObservation {
                channel: ch.id,
                energy: if ch.id.0 == 47 {
                    Dbm(-98.0)
                } else {
                    Dbm(-62.0)
                },
                occupant: if ch.id.0 == 47 {
                    OccupantKind::Idle
                } else {
                    OccupantKind::Foreign
                },
            })
            .collect();
        let mut t = Instant::ZERO;
        while t < Instant::from_secs(60) {
            inj.advance_to(t);
            lc.step(&mut inj, &listen, t);
            t += TICK;
        }
        // 47 ranked best both at bootstrap and after revocation of 47
        // itself — after the revocation the fallback is a foreign
        // channel (the least bad), proving the ranking is consulted.
        let _ = lc.drain_events();
        assert!(lc.may_transmit(Instant::from_secs(59)));
    }

    #[test]
    fn eirp_reduced_to_grant_cap_and_restored_is_degraded() {
        // Database caps at 36 dBm; asking for 40 forces rung 3.
        let mut lc = lifecycle(40.0);
        let mut inj = FaultInjector::new(
            SpectrumDatabase::new(ChannelPlan::Eu, vec![]),
            FaultPlan::none(),
        );
        let events = run(&mut lc, &mut inj, Instant::ZERO, Instant::from_secs(10));
        assert!(events.iter().any(|(_, e)| matches!(
            e,
            LifecycleEvent::Degraded {
                step: DegradeStep::EirpReduction,
                ..
            }
        )));
        assert_eq!(lc.phase(), LeasePhase::Degraded);
        assert!((lc.eirp_dbm() - 36.0).abs() < 1e-9);
        assert!(lc.may_transmit(Instant::from_secs(9)));
    }

    #[test]
    fn transient_faults_back_off_and_recover_without_losing_the_lease() {
        let mut lc = lifecycle(30.0);
        // 35% of exchanges fail one way or another.
        let plan = FaultPlan {
            request_loss: 0.2,
            transient_error: 0.15,
            seed: 11,
            ..FaultPlan::none()
        };
        let mut inj = FaultInjector::new(SpectrumDatabase::new(ChannelPlan::Eu, vec![]), plan);
        let events = run(&mut lc, &mut inj, Instant::ZERO, Instant::from_secs(600));
        assert!(lc.stats().backoffs > 0, "some exchanges must have failed");
        assert_eq!(lc.stats().missed_deadlines, 0);
        // Backoffs resolved into recoveries or plain renewals; the AP
        // ends the run on the air.
        assert!(lc.may_transmit(Instant::from_secs(600)));
        let backoffs = events
            .iter()
            .filter(|(_, e)| matches!(e, LifecycleEvent::BackedOff { .. }))
            .count() as u64;
        assert_eq!(backoffs, lc.stats().backoffs);
    }

    #[test]
    fn backoff_delays_grow_and_jitter_is_seeded() {
        let resumes = |seed: u64| {
            let mut lc = LeaseLifecycle::new(
                "ap",
                1,
                GeoLocation::gps(Point::new(100_000.0, 0.0)),
                ChannelPlan::Eu,
                LifecycleConfig::paper_default(30.0),
                seed,
            );
            // Total outage: every acquisition attempt fails.
            let plan = FaultPlan {
                outages: vec![(Instant::ZERO, Instant::from_secs(10_000))],
                ..FaultPlan::none()
            };
            let mut inj = FaultInjector::new(SpectrumDatabase::new(ChannelPlan::Eu, vec![]), plan);
            let events = run(&mut lc, &mut inj, Instant::ZERO, Instant::from_secs(300));
            events
                .into_iter()
                .filter_map(|(t, e)| match e {
                    LifecycleEvent::BackedOff { resume_at, .. } => {
                        Some(resume_at.as_micros() - t.as_micros())
                    }
                    _ => None,
                })
                .collect::<Vec<u64>>()
        };
        let a = resumes(1);
        let b = resumes(1);
        let c = resumes(2);
        assert_eq!(a, b, "same seed, same jitter");
        assert_ne!(a, c, "different seed, different jitter");
        // Delays grow toward the cap (2 s base, 30 s cap, ±25% jitter).
        assert!(a.len() >= 4);
        assert!(a[0] < 3_000_000, "first delay near the base: {a:?}");
        let max = *a.iter().max().expect("non-empty backoff sequence");
        assert!(max > 15_000_000, "later delays approach the cap: {a:?}");
        assert!(max <= 37_500_000, "cap plus jitter bounds delays: {a:?}");
    }

    #[test]
    fn no_transmission_without_confirmed_availability() {
        // The safety rule, checked densely: at every tick where the AP
        // may transmit, ground-truth availability was confirmed within
        // the last 58 s.
        let mut lc = lifecycle(30.0);
        let plan = FaultPlan::at_intensity(3, 0.8, Instant::from_secs(600));
        let mut inj = FaultInjector::new(SpectrumDatabase::new(ChannelPlan::Eu, vec![]), plan);
        let loc = Point::new(100_000.0, 0.0);
        let mut unavailable_since: Option<Instant> = None;
        let mut t = Instant::ZERO;
        while t < Instant::from_secs(600) {
            inj.advance_to(t);
            lc.step(&mut inj, &[], t);
            if let Some(ch) = lc.current_channel() {
                if lc.may_transmit(t) {
                    if inj.database().is_available(ch, loc, t) {
                        unavailable_since = None;
                    } else if let Some(since) = unavailable_since {
                        assert!(
                            t.duration_since(since) <= ETSI_VACATE_DEADLINE,
                            "transmitting on {ch} unavailable since {since:?} at {t:?}"
                        );
                    } else {
                        unavailable_since = Some(t);
                    }
                }
            } else {
                unavailable_since = None;
            }
            t += TICK;
        }
        assert_eq!(lc.stats().missed_deadlines, 0);
    }
}
