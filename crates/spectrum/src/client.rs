//! The access-point-side database client.
//!
//! Owns the lease lifecycle of Fig 6: query → grant → operate → lose the
//! channel → **stop transmitting within the ETSI minute** → re-query →
//! reacquire. "No TVWS client is allowed to transmit in a channel without
//! having a valid lease from a spectrum database and has to stop once a
//! lease has expired" (§4.2); ETSI EN 301 598 "mandate\[s\] that
//! transmissions should stop within one minute after the channel ceases
//! to be available" (§6.2).

use crate::faults::{PawsFailure, PawsTransport};
use crate::paws::{
    AvailSpectrumReq, DeviceDescriptor, GeoLocation, InitReq, InitResp, SpectrumGrant,
    SpectrumUseNotify,
};
use cellfi_obs::trace::{Event, Tracer};
use cellfi_types::time::{Duration, Instant};
use cellfi_types::ChannelId;

/// The ETSI EN 301 598 vacate deadline.
pub const ETSI_VACATE_DEADLINE: Duration = Duration::from_secs(60);

/// Why [`DatabaseClient::start_operation`] refused to begin transmitting.
///
/// Every case means "do not radiate" — the first two are *regulatory*
/// refusals by the client itself, the third a failed mandatory
/// `SPECTRUM_USE_NOTIFY` (ETSI requires the notification before
/// operation, so a lost or timed-out notify also blocks the radio). A
/// compliant AP treats all of them as outcomes, not bugs, which is why
/// the API returns them instead of panicking.
#[derive(Debug, Clone, PartialEq)]
pub enum OperationError {
    /// No currently-valid grant covers the requested channel.
    NoValidGrant {
        /// The channel the caller asked to operate on.
        channel: ChannelId,
    },
    /// Requested EIRP exceeds the grant's cap.
    EirpExceedsGrant {
        /// The EIRP the caller asked for, dBm.
        requested_dbm: f64,
        /// The grant's maximum permitted EIRP, dBm.
        cap_dbm: f64,
    },
    /// The mandatory use notification did not complete.
    NotifyFailed(PawsFailure),
}

impl std::fmt::Display for OperationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            OperationError::NoValidGrant { channel } => {
                write!(f, "no valid grant for {channel}")
            }
            OperationError::EirpExceedsGrant {
                requested_dbm,
                cap_dbm,
            } => write!(
                f,
                "EIRP {requested_dbm} dBm exceeds grant cap {cap_dbm} dBm"
            ),
            OperationError::NotifyFailed(ref failure) => {
                write!(f, "SPECTRUM_USE_NOTIFY failed: {failure}")
            }
        }
    }
}

impl std::error::Error for OperationError {}

/// Lease state of the client.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClientState {
    /// No channel in use; transmission forbidden.
    Idle,
    /// Operating on a channel under a valid grant.
    Operating {
        /// The channel in use.
        channel: ChannelId,
        /// Grant expiry.
        expires: Instant,
    },
    /// The channel was lost (withdrawn or expired); transmission must
    /// stop by `deadline` and the radio is being shut down.
    Vacating {
        /// The channel being vacated.
        channel: ChannelId,
        /// Hard stop deadline (loss time + 60 s).
        deadline: Instant,
    },
}

/// The CellFi TVWS database client (one per access point, answering for
/// the AP and all of its mobile clients, §4.2).
#[derive(Debug, Clone)]
pub struct DatabaseClient {
    device: DeviceDescriptor,
    location: GeoLocation,
    /// Re-query cadence (ETSI: at most the database's max polling).
    poll_interval: Duration,
    last_query: Option<Instant>,
    /// Grants from the last query.
    grants: Vec<SpectrumGrant>,
    state: ClientState,
    /// Regulatory vacate deadline (ETSI: 60 s; FCC-style profiles may
    /// differ). Defaults to [`ETSI_VACATE_DEADLINE`].
    vacate_deadline: Duration,
    /// `response_time_us` of the last successful availability answer —
    /// when a cache replays an old response this is *older* than the
    /// query time, and the regulatory confidence window must anchor
    /// here, not at the query.
    last_response: Option<Instant>,
}

impl DatabaseClient {
    /// New client for an AP at `location` with `clients` mobile devices.
    pub fn new(serial: &str, clients: u32, location: GeoLocation) -> DatabaseClient {
        DatabaseClient {
            device: DeviceDescriptor::master_with_clients(serial, clients),
            location,
            poll_interval: Duration::from_secs(60),
            last_query: None,
            grants: Vec::new(),
            state: ClientState::Idle,
            vacate_deadline: ETSI_VACATE_DEADLINE,
            last_response: None,
        }
    }

    /// Override the regulatory vacate deadline (regulatory profiles;
    /// see [`crate::profile::RuleProfile`]).
    pub fn with_vacate_deadline(mut self, deadline: Duration) -> DatabaseClient {
        self.vacate_deadline = deadline;
        self
    }

    /// Current lease state.
    pub fn state(&self) -> ClientState {
        self.state
    }

    /// Grants from the most recent query.
    pub fn grants(&self) -> &[SpectrumGrant] {
        &self.grants
    }

    /// When the database computed the most recent availability answer.
    /// Equal to the query time when talking to a live database; older
    /// when an availability cache replayed a stored response.
    pub fn last_response_time(&self) -> Option<Instant> {
        self.last_response
    }

    /// Perform the PAWS `INIT` handshake: the database's capabilities
    /// bound the client's polling cadence (a client may not cache an
    /// availability answer longer than `max_polling_secs`). A transport
    /// failure leaves the client's cadence unchanged — it retries later.
    pub fn init<T: PawsTransport>(
        &mut self,
        transport: &mut T,
        now: Instant,
    ) -> Result<InitResp, PawsFailure> {
        let resp = transport.init(
            &InitReq {
                device: self.device.clone(),
                location: self.location,
            },
            now,
        )?;
        self.poll_interval = self
            .poll_interval
            .min(Duration::from_secs(resp.max_polling_secs));
        Ok(resp)
    }

    /// Whether a (re-)query is due.
    pub fn query_due(&self, now: Instant) -> bool {
        match self.last_query {
            None => true,
            Some(t) => now.duration_since(t) >= self.poll_interval,
        }
    }

    /// Query the database. Updates grants and, if the channel currently
    /// in use is no longer granted, transitions to `Vacating` with the
    /// ETSI deadline. Returns the new state.
    ///
    /// A transport failure ([`PawsFailure`]) leaves the client entirely
    /// unchanged — grants, query clock and lease state are all as
    /// before, so a lost response can never wedge the lifecycle: the
    /// caller backs off and retries while the existing lease (if any)
    /// keeps running toward its own expiry.
    pub fn refresh<T: PawsTransport>(
        &mut self,
        transport: &mut T,
        now: Instant,
    ) -> Result<ClientState, PawsFailure> {
        let req = AvailSpectrumReq {
            device: self.device.clone(),
            location: self.location,
            request_time_us: now.as_micros(),
        };
        let resp = transport.avail_spectrum(&req, now)?;
        self.grants = resp.grants;
        self.last_query = Some(now);
        // A replayed (cached) response carries its original computation
        // time; clamp to `now` so a clock oddity can't date it forward.
        self.last_response = Some(Instant::from_micros(
            resp.response_time_us.min(now.as_micros()),
        ));
        self.state = match self.state {
            ClientState::Operating { channel, .. } => {
                match self.grants.iter().find(|g| g.channel == channel) {
                    Some(g) => ClientState::Operating {
                        channel,
                        expires: Instant::from_micros(g.expires_us),
                    },
                    None => ClientState::Vacating {
                        channel,
                        deadline: now + self.vacate_deadline,
                    },
                }
            }
            other => other,
        };
        Ok(self.state)
    }

    /// Begin operating on `channel`. Requires a currently-valid grant
    /// whose EIRP cap covers `eirp_dbm`; on success sends the mandatory
    /// `SPECTRUM_USE_NOTIFY` and enters [`ClientState::Operating`]. On
    /// failure the client state is unchanged and nothing is notified —
    /// the AP simply may not radiate.
    pub fn start_operation<T: PawsTransport>(
        &mut self,
        transport: &mut T,
        channel: ChannelId,
        eirp_dbm: f64,
        now: Instant,
    ) -> Result<(), OperationError> {
        let grant = self
            .grants
            .iter()
            .find(|g| g.channel == channel && g.valid_at(now))
            .ok_or(OperationError::NoValidGrant { channel })?;
        if eirp_dbm > grant.max_eirp_dbm {
            return Err(OperationError::EirpExceedsGrant {
                requested_dbm: eirp_dbm,
                cap_dbm: grant.max_eirp_dbm,
            });
        }
        let expires = Instant::from_micros(grant.expires_us);
        transport
            .notify_use(
                SpectrumUseNotify {
                    device: self.device.clone(),
                    channel,
                    eirp_dbm,
                },
                now,
            )
            .map_err(OperationError::NotifyFailed)?;
        self.state = ClientState::Operating { channel, expires };
        Ok(())
    }

    /// The radio has actually been turned off; lease released.
    pub fn confirm_stopped(&mut self) {
        self.state = ClientState::Idle;
    }

    /// [`DatabaseClient::refresh`] that also emits the lease-lifecycle
    /// trace events: a renewal while operating, or the start of a vacate
    /// with its ETSI deadline. A transport failure emits nothing (the
    /// harness traces injected faults separately).
    pub fn refresh_traced<T: PawsTransport>(
        &mut self,
        transport: &mut T,
        now: Instant,
        tracer: &mut Tracer,
    ) -> Result<ClientState, PawsFailure> {
        let before = self.state;
        let after = self.refresh(transport, now)?;
        match (before, after) {
            (ClientState::Operating { .. }, ClientState::Operating { channel, expires }) => {
                tracer.emit(
                    now,
                    Event::PawsRenew {
                        channel: channel.0,
                        expires_us: expires.as_micros(),
                    },
                );
            }
            (ClientState::Operating { .. }, ClientState::Vacating { channel, deadline }) => {
                tracer.emit(
                    now,
                    Event::PawsVacate {
                        channel: channel.0,
                        deadline_us: deadline.as_micros(),
                    },
                );
            }
            _ => {}
        }
        Ok(after)
    }

    /// [`DatabaseClient::start_operation`] that also emits the
    /// [`Event::PawsGrant`] trace event on success.
    pub fn start_operation_traced<T: PawsTransport>(
        &mut self,
        transport: &mut T,
        channel: ChannelId,
        eirp_dbm: f64,
        now: Instant,
        tracer: &mut Tracer,
    ) -> Result<(), OperationError> {
        self.start_operation(transport, channel, eirp_dbm, now)?;
        if let ClientState::Operating { expires, .. } = self.state {
            tracer.emit(
                now,
                Event::PawsGrant {
                    channel: channel.0,
                    expires_us: expires.as_micros(),
                },
            );
        }
        Ok(())
    }

    /// [`DatabaseClient::tick`] that also emits [`Event::PawsVacate`]
    /// when an in-lease expiry starts the vacate countdown.
    pub fn tick_traced(&mut self, now: Instant, tracer: &mut Tracer) -> ClientState {
        let before = self.state;
        let after = self.tick(now);
        if let (ClientState::Operating { .. }, ClientState::Vacating { channel, deadline }) =
            (before, after)
        {
            tracer.emit(
                now,
                Event::PawsVacate {
                    channel: channel.0,
                    deadline_us: deadline.as_micros(),
                },
            );
        }
        after
    }

    /// [`DatabaseClient::confirm_stopped`] that also emits
    /// [`Event::PawsVacated`] with the margin left before the ETSI
    /// deadline (zero margin means the deadline was missed — a
    /// compliance violation worth alerting on).
    pub fn confirm_stopped_traced(&mut self, now: Instant, tracer: &mut Tracer) {
        if let ClientState::Vacating { channel, deadline } = self.state {
            let margin_us = deadline.as_micros().saturating_sub(now.as_micros());
            tracer.emit(
                now,
                Event::PawsVacated {
                    channel: channel.0,
                    margin_us,
                },
            );
        }
        self.confirm_stopped();
    }

    /// TVWS compliance predicate: may the AP radiate at `now`?
    ///
    /// `Operating` with an unexpired grant: yes. `Vacating`: only until
    /// the ETSI deadline (the stack is expected to stop far sooner — the
    /// paper's AP stopped 2 s after the DB change). Expired grant: no.
    ///
    /// Boundary semantics are **exclusive** everywhere, matching
    /// [`SpectrumGrant::valid_at`] and the database's withdrawal
    /// windows: at exactly `expires` the lease is already over and at
    /// exactly `deadline` the vacate window is already over. A
    /// zero-duration grant (`expires ==` grant time) therefore never
    /// permits transmission.
    pub fn may_transmit(&self, now: Instant) -> bool {
        match self.state {
            ClientState::Idle => false,
            ClientState::Operating { expires, .. } => now < expires,
            ClientState::Vacating { deadline, .. } => now < deadline,
        }
    }

    /// An in-lease expiry check the AP runs each tick: transitions
    /// `Operating` → `Vacating` when the lease runs out between polls.
    pub fn tick(&mut self, now: Instant) -> ClientState {
        if let ClientState::Operating { channel, expires } = self.state {
            if now >= expires {
                self.state = ClientState::Vacating {
                    channel,
                    deadline: expires + self.vacate_deadline,
                };
            }
        }
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::SpectrumDatabase;
    use crate::faults::{FaultInjector, FaultPlan, PAWS_CLIENT_TIMEOUT};
    use crate::plan::ChannelPlan;
    use cellfi_types::geo::Point;

    fn setup() -> (SpectrumDatabase, DatabaseClient) {
        let db = SpectrumDatabase::new(ChannelPlan::Eu, vec![]);
        let loc = GeoLocation::gps(Point::new(0.0, 0.0));
        let client = DatabaseClient::new("cellfi-ap-001", 10, loc);
        (db, client)
    }

    #[test]
    fn idle_client_may_not_transmit() {
        let (_, c) = setup();
        assert!(!c.may_transmit(Instant::ZERO));
        assert!(c.query_due(Instant::ZERO));
    }

    #[test]
    fn grant_then_operate() {
        let (mut db, mut c) = setup();
        c.refresh(&mut db, Instant::from_secs(1)).unwrap();
        assert!(!c.grants().is_empty());
        let ch = c.grants()[0].channel;
        c.start_operation(&mut db, ch, 36.0, Instant::from_secs(1))
            .expect("granted channel accepts operation");
        assert!(c.may_transmit(Instant::from_secs(2)));
        assert_eq!(db.notifications().len(), 1);
    }

    #[test]
    fn overpowered_operation_rejected() {
        let (mut db, mut c) = setup();
        c.refresh(&mut db, Instant::ZERO).unwrap();
        let ch = c.grants()[0].channel;
        let err = c.start_operation(&mut db, ch, 40.0, Instant::ZERO);
        assert!(
            matches!(err, Err(OperationError::EirpExceedsGrant { .. })),
            "{err:?}"
        );
        // Refusal is a compliance outcome, not a crash: state unchanged,
        // nothing notified to the database.
        assert_eq!(c.state(), ClientState::Idle);
        assert!(db.notifications().is_empty());
        assert!(!c.may_transmit(Instant::ZERO));
    }

    #[test]
    fn operation_without_grant_rejected() {
        let (mut db, mut c) = setup();
        c.refresh(&mut db, Instant::ZERO).unwrap();
        let bogus = ChannelId::new(9_999);
        let err = c.start_operation(&mut db, bogus, 36.0, Instant::ZERO);
        assert_eq!(err, Err(OperationError::NoValidGrant { channel: bogus }));
        assert_eq!(c.state(), ClientState::Idle);
    }

    #[test]
    fn withdrawal_starts_vacate_with_etsi_deadline() {
        // The Fig 6 sequence, compliance side.
        let (mut db, mut c) = setup();
        c.refresh(&mut db, Instant::from_secs(0)).unwrap();
        let ch = c.grants()[0].channel;
        c.start_operation(&mut db, ch, 36.0, Instant::ZERO)
            .expect("granted channel accepts operation");
        db.withdraw_channel(ch, None);
        let t = Instant::from_secs(57);
        let state = c.refresh(&mut db, t).unwrap();
        match state {
            ClientState::Vacating { channel, deadline } => {
                assert_eq!(channel, ch);
                assert_eq!(deadline, t + ETSI_VACATE_DEADLINE);
            }
            other => panic!("expected Vacating, got {other:?}"),
        }
        // Transmission legal until the deadline, illegal after.
        assert!(c.may_transmit(Instant::from_secs(116)));
        assert!(!c.may_transmit(Instant::from_secs(117)));
        c.confirm_stopped();
        assert!(!c.may_transmit(Instant::from_secs(58)));
    }

    #[test]
    fn lease_expiry_between_polls_caught_by_tick() {
        let (mut db, mut c) = setup();
        db = db.with_lease_validity(Duration::from_secs(30));
        c.refresh(&mut db, Instant::ZERO).unwrap();
        let ch = c.grants()[0].channel;
        c.start_operation(&mut db, ch, 36.0, Instant::ZERO)
            .expect("granted channel accepts operation");
        assert!(c.may_transmit(Instant::from_secs(29)));
        // Grant expires at t=30 with no poll in between.
        let state = c.tick(Instant::from_secs(30));
        assert!(matches!(state, ClientState::Vacating { .. }));
        assert!(!c.may_transmit(Instant::from_secs(91)));
    }

    #[test]
    fn refresh_extends_operating_lease() {
        let (mut db, mut c) = setup();
        c.refresh(&mut db, Instant::ZERO).unwrap();
        let ch = c.grants()[0].channel;
        c.start_operation(&mut db, ch, 36.0, Instant::ZERO)
            .expect("granted channel accepts operation");
        let before = match c.state() {
            ClientState::Operating { expires, .. } => expires,
            _ => unreachable!(),
        };
        c.refresh(&mut db, Instant::from_secs(3600)).unwrap();
        let after = match c.state() {
            ClientState::Operating { expires, .. } => expires,
            _ => panic!("should still be operating"),
        };
        assert!(after > before);
    }

    #[test]
    fn init_handshake_bounds_polling() {
        let (mut db, mut c) = setup();
        let resp = c.init(&mut db, Instant::ZERO).unwrap();
        assert_eq!(resp.ruleset, "ETSI-EN-301-598-1.1.1");
        // A 30 s database cadence must tighten the client's 60 s default.
        let mut strict = SpectrumDatabase::new(ChannelPlan::Eu, vec![]).with_max_polling(30);
        c.init(&mut strict, Instant::ZERO).unwrap();
        c.refresh(&mut strict, Instant::ZERO).unwrap();
        assert!(c.query_due(Instant::from_secs(31)));
    }

    #[test]
    fn traced_lifecycle_emits_grant_vacate_and_margin() {
        let (mut db, mut c) = setup();
        let mut tr = Tracer::new(true);
        c.refresh_traced(&mut db, Instant::ZERO, &mut tr).unwrap();
        assert!(tr.is_empty(), "idle refresh is not a lifecycle transition");
        let ch = c.grants()[0].channel;
        c.start_operation_traced(&mut db, ch, 36.0, Instant::ZERO, &mut tr)
            .expect("granted channel accepts operation");
        db.withdraw_channel(ch, None);
        c.refresh_traced(&mut db, Instant::from_secs(10), &mut tr)
            .unwrap();
        // Stop 2 s after noticing, like the paper's AP: 48 s of margin.
        c.confirm_stopped_traced(Instant::from_secs(12), &mut tr);
        let jsonl = tr.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3, "{jsonl}");
        assert!(lines[0].contains("paws_grant"), "{}", lines[0]);
        assert!(lines[1].contains("paws_vacate"), "{}", lines[1]);
        assert!(
            lines[1].contains(&format!("\"deadline_us\":{}", 70_000_000u64)),
            "{}",
            lines[1]
        );
        assert!(lines[2].contains("\"margin_us\":58000000"), "{}", lines[2]);
    }

    #[test]
    fn poll_cadence() {
        let (mut db, mut c) = setup();
        c.refresh(&mut db, Instant::from_secs(10)).unwrap();
        assert!(!c.query_due(Instant::from_secs(30)));
        assert!(c.query_due(Instant::from_secs(70)));
    }

    #[test]
    fn expiry_boundary_is_exclusive_on_both_sides() {
        // Satellite: pin `expires == now` semantics. The client and the
        // grant agree: the expiry instant itself is outside the lease.
        let (mut db, mut c) = setup();
        db = db.with_lease_validity(Duration::from_secs(100));
        c.refresh(&mut db, Instant::ZERO).unwrap();
        let ch = c.grants()[0].channel;
        assert!(c.grants()[0].valid_at(Instant::from_micros(99_999_999)));
        assert!(!c.grants()[0].valid_at(Instant::from_secs(100)));
        c.start_operation(&mut db, ch, 36.0, Instant::ZERO)
            .expect("granted channel accepts operation");
        assert!(c.may_transmit(Instant::from_micros(99_999_999)));
        assert!(!c.may_transmit(Instant::from_secs(100)));
    }

    #[test]
    fn zero_duration_grant_refused_without_underflow() {
        // Satellite: a grant that expires the instant it is issued must
        // refuse operation (valid_at is exclusive) rather than start a
        // lease of negative length.
        let (mut db, mut c) = setup();
        db = db.with_lease_validity(Duration::ZERO);
        let t = Instant::from_secs(5);
        c.refresh(&mut db, t).unwrap();
        assert!(!c.grants().is_empty(), "grants are issued, just expired");
        let ch = c.grants()[0].channel;
        let err = c.start_operation(&mut db, ch, 36.0, t);
        assert_eq!(err, Err(OperationError::NoValidGrant { channel: ch }));
        assert_eq!(c.state(), ClientState::Idle);
        assert!(!c.may_transmit(t));
    }

    #[test]
    fn transport_failure_leaves_client_unwedged() {
        // Satellite: a lost response can never wedge the lifecycle —
        // grants and lease state are untouched and the query stays due.
        let (db, mut c) = setup();
        let mut good = FaultInjector::new(db.clone(), FaultPlan::none());
        c.refresh(&mut good, Instant::ZERO).unwrap();
        let ch = c.grants()[0].channel;
        c.start_operation(&mut good, ch, 36.0, Instant::ZERO)
            .expect("granted channel accepts operation");
        let grants_before = c.grants().to_vec();
        let state_before = c.state();
        let mut lossy = FaultInjector::new(
            db,
            FaultPlan {
                request_loss: 1.0,
                ..FaultPlan::none()
            },
        );
        let t = Instant::from_secs(120);
        let err = c.refresh(&mut lossy, t);
        assert_eq!(
            err,
            Err(PawsFailure::PawsTimeout {
                waited: PAWS_CLIENT_TIMEOUT
            })
        );
        assert_eq!(c.grants(), &grants_before[..]);
        assert_eq!(c.state(), state_before);
        assert!(c.query_due(t), "failed refresh must not reset the clock");
    }

    #[test]
    fn profile_vacate_deadline_overrides_the_etsi_minute() {
        let (mut db, c) = setup();
        let mut c = c.with_vacate_deadline(Duration::from_secs(120));
        db = db.with_lease_validity(Duration::from_secs(30));
        c.refresh(&mut db, Instant::ZERO).unwrap();
        let ch = c.grants()[0].channel;
        c.start_operation(&mut db, ch, 36.0, Instant::ZERO)
            .expect("granted channel accepts operation");
        let state = c.tick(Instant::from_secs(30));
        match state {
            ClientState::Vacating { deadline, .. } => {
                assert_eq!(deadline, Instant::from_secs(150));
            }
            other => panic!("expected Vacating, got {other:?}"),
        }
    }

    #[test]
    fn refresh_records_the_response_timestamp() {
        let (mut db, mut c) = setup();
        assert_eq!(c.last_response_time(), None);
        let t = Instant::from_secs(7);
        c.refresh(&mut db, t).unwrap();
        assert_eq!(c.last_response_time(), Some(t));
    }

    #[test]
    fn failed_notify_blocks_operation() {
        let (db, mut c) = setup();
        let mut inj = FaultInjector::new(db, FaultPlan::none());
        c.refresh(&mut inj, Instant::ZERO).unwrap();
        let ch = c.grants()[0].channel;
        // All requests lost from here on: the mandatory notify fails, so
        // the client may not radiate even though the grant is valid.
        inj = FaultInjector::new(
            inj.database().clone(),
            FaultPlan {
                request_loss: 1.0,
                ..FaultPlan::none()
            },
        );
        let err = c.start_operation(&mut inj, ch, 36.0, Instant::ZERO);
        assert!(
            matches!(err, Err(OperationError::NotifyFailed(_))),
            "{err:?}"
        );
        assert_eq!(c.state(), ClientState::Idle);
        assert!(!c.may_transmit(Instant::ZERO));
    }
}
