//! Deterministic fault injection for the PAWS exchange.
//!
//! Real TVWS deployments lose database connectivity, see delayed or
//! malformed PAWS responses, and face mid-lease revocations; the TVWS
//! survey literature flags database reachability as the operational
//! Achilles' heel of white-space systems. This module makes those
//! failures *first-class and reproducible*: a [`FaultPlan`] describes a
//! fault schedule, and a [`FaultInjector`] sits between the
//! [`DatabaseClient`](crate::client::DatabaseClient) and the
//! [`SpectrumDatabase`], perturbing every request from a seeded RNG —
//! request loss, response delay past the client timeout, database outage
//! windows, transient protocol errors, truncated grant lists, and
//! mid-lease revocation.
//!
//! Everything is driven by the simulation clock and a seed: the same
//! plan replayed against the same traffic produces byte-identical fault
//! sequences, which is what lets `exp chaos` pin its traces across
//! thread counts and lets the compliance property tests explore
//! arbitrary generated schedules.

use crate::database::SpectrumDatabase;
use crate::paws::{
    AvailSpectrumReq, AvailSpectrumResp, InitReq, InitResp, PawsError, SpectrumUseNotify,
};
use cellfi_types::time::{Duration, Instant};
use cellfi_types::ChannelId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The client-side PAWS request timeout: how long an AP waits for a
/// database response before treating the request as lost. The paper's
/// database round trips were sub-second; 2 s is a conservative bound
/// that still leaves dozens of retries inside the ETSI minute.
pub const PAWS_CLIENT_TIMEOUT: Duration = Duration::from_secs(2);

/// Why a PAWS request failed at the transport layer.
///
/// These are *environmental* failures — the network or the database
/// misbehaving — as opposed to [`crate::client::OperationError`], which
/// is the client refusing to do something non-compliant. A resilient
/// client must survive every variant without wedging its lifecycle.
#[derive(Debug, Clone, PartialEq)]
pub enum PawsFailure {
    /// No response arrived before [`PAWS_CLIENT_TIMEOUT`] elapsed —
    /// the request or its response was lost or delayed past the bound.
    PawsTimeout {
        /// How long the client waited before giving up.
        waited: Duration,
    },
    /// The database is unreachable (connectivity outage window).
    Unreachable,
    /// The database answered, but with a PAWS protocol error.
    Protocol(PawsError),
}

impl std::fmt::Display for PawsFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PawsFailure::PawsTimeout { waited } => {
                write!(f, "PAWS request timed out after {} us", waited.as_micros())
            }
            PawsFailure::Unreachable => write!(f, "spectrum database unreachable"),
            PawsFailure::Protocol(e) => write!(f, "PAWS protocol error: {e}"),
        }
    }
}

impl std::error::Error for PawsFailure {}

/// The PAWS exchange as the client sees it: a transport that may fail.
///
/// [`SpectrumDatabase`] implements this infallibly (the in-process
/// "perfect network"); [`FaultInjector`] wraps a database and makes the
/// same exchange unreliable on a deterministic schedule. The client is
/// generic over the trait, so every request path handles failure.
pub trait PawsTransport {
    /// Serve a PAWS `INIT_REQ`.
    fn init(&mut self, req: &InitReq, now: Instant) -> Result<InitResp, PawsFailure>;
    /// Serve a PAWS `AVAIL_SPECTRUM_REQ`.
    fn avail_spectrum(
        &mut self,
        req: &AvailSpectrumReq,
        now: Instant,
    ) -> Result<AvailSpectrumResp, PawsFailure>;
    /// Accept a `SPECTRUM_USE_NOTIFY`.
    fn notify_use(&mut self, notify: SpectrumUseNotify, now: Instant) -> Result<(), PawsFailure>;
}

impl PawsTransport for SpectrumDatabase {
    fn init(&mut self, req: &InitReq, _now: Instant) -> Result<InitResp, PawsFailure> {
        Ok(SpectrumDatabase::init(self, req))
    }

    fn avail_spectrum(
        &mut self,
        req: &AvailSpectrumReq,
        _now: Instant,
    ) -> Result<AvailSpectrumResp, PawsFailure> {
        Ok(SpectrumDatabase::avail_spectrum(self, req))
    }

    fn notify_use(&mut self, notify: SpectrumUseNotify, _now: Instant) -> Result<(), PawsFailure> {
        SpectrumDatabase::notify_use(self, notify);
        Ok(())
    }
}

/// The kind of fault an injector applied to one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The request never reached the database (client times out).
    RequestLost,
    /// The response was delayed past the client timeout (client times
    /// out; the database-side effect of the request still happened).
    ResponseDelayed,
    /// The request fell inside a database outage window.
    Outage,
    /// The database answered with a transient PAWS protocol error.
    TransientError,
    /// The grant list in the response was truncated.
    TruncatedGrants,
    /// A channel was revoked mid-lease by the schedule.
    Revocation,
}

impl FaultKind {
    /// Stable numeric code for trace events (obs payloads are numbers).
    pub fn code(self) -> u32 {
        match self {
            FaultKind::RequestLost => 0,
            FaultKind::ResponseDelayed => 1,
            FaultKind::Outage => 2,
            FaultKind::TransientError => 3,
            FaultKind::TruncatedGrants => 4,
            FaultKind::Revocation => 5,
        }
    }
}

/// A deterministic fault schedule for one PAWS client↔database path.
///
/// Per-request faults are drawn from a seeded RNG at the given rates;
/// outage windows and revocations are explicit points on the simulation
/// clock. [`FaultPlan::at_intensity`] scales everything from a single
/// knob so experiments can sweep severity.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the per-request fault draws.
    pub seed: u64,
    /// Probability a request is silently lost (→ timeout).
    pub request_loss: f64,
    /// Probability a response is delayed past the client timeout. The
    /// database still processed the request (notifications are logged),
    /// but the client must treat it as failed.
    pub response_delay: f64,
    /// Probability of a transient PAWS protocol error response.
    pub transient_error: f64,
    /// Probability an availability response loses the tail of its grant
    /// list (keeps the first half, at least one grant when non-empty).
    pub truncated_grants: f64,
    /// Database connectivity outage windows `[start, end)`.
    pub outages: Vec<(Instant, Instant)>,
    /// Mid-lease revocations: at each instant, withdraw the named
    /// channel (`Some`) or whatever channel the client last notified
    /// use of (`None`).
    pub revocations: Vec<(Instant, Option<ChannelId>)>,
    /// How long a revoked channel stays withdrawn before the operator
    /// reinstates it.
    pub revocation_hold: Duration,
}

impl FaultPlan {
    /// A plan that injects nothing (the perfect network).
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            request_loss: 0.0,
            response_delay: 0.0,
            transient_error: 0.0,
            truncated_grants: 0.0,
            outages: Vec::new(),
            revocations: Vec::new(),
            revocation_hold: Duration::from_secs(300),
        }
    }

    /// A no-fault plan carrying `seed` — what [`FaultPlan::at_intensity`]
    /// degenerates to at zero intensity.
    pub fn none_with_seed(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::none()
        }
    }

    /// A plan scaled from one severity knob in `[0, 1]`: per-request
    /// fault rates grow linearly with `intensity`, and the schedule
    /// gains `⌈intensity · 4⌉` outage windows plus the same number of
    /// revocations of the in-use channel, placed deterministically from
    /// `seed` across `[0, horizon)`.
    pub fn at_intensity(seed: u64, intensity: f64, horizon: Instant) -> FaultPlan {
        let intensity = intensity.clamp(0.0, 1.0);
        let mut plan = FaultPlan {
            seed,
            request_loss: 0.15 * intensity,
            response_delay: 0.10 * intensity,
            transient_error: 0.10 * intensity,
            truncated_grants: 0.10 * intensity,
            ..FaultPlan::none()
        };
        if intensity <= 0.0 {
            return plan;
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6661_756c_7470_6c61); // "faultpla"
        let n = (intensity * 4.0).ceil() as usize;
        let horizon_us = horizon.as_micros().max(1);
        for _ in 0..n {
            let start = Instant::from_micros(rng.gen_range(0..horizon_us));
            // Outages between 5 s and 45 s: long enough to force several
            // retries, short enough to recover inside the ETSI minute.
            let len = Duration::from_micros(rng.gen_range(5_000_000..45_000_000));
            plan.outages.push((start, start + len));
            let at = Instant::from_micros(rng.gen_range(0..horizon_us));
            plan.revocations.push((at, None));
        }
        // Schedules are applied in time order regardless of draw order.
        plan.outages.sort_by_key(|&(s, _)| s.as_micros());
        plan.revocations.sort_by_key(|&(t, _)| t.as_micros());
        plan
    }

    /// Whether `now` falls inside an outage window.
    pub fn in_outage(&self, now: Instant) -> bool {
        self.outages.iter().any(|&(s, e)| s <= now && now < e)
    }
}

/// Wraps a [`SpectrumDatabase`] and perturbs the PAWS exchange per a
/// [`FaultPlan`]. Owns the database; experiments reach the ground truth
/// through [`FaultInjector::database`] (e.g. to check real availability
/// when verifying compliance).
#[derive(Debug, Clone)]
pub struct FaultInjector {
    db: SpectrumDatabase,
    plan: FaultPlan,
    rng: StdRng,
    /// Revocations not yet applied (index into `plan.revocations`).
    next_revocation: usize,
    /// The channel most recently notified in use (revocation target for
    /// `None` entries).
    last_use: Option<ChannelId>,
    /// Log of injected faults, drained by the harness for trace events.
    log: Vec<(Instant, FaultKind)>,
}

impl FaultInjector {
    /// An injector applying `plan` in front of `db`.
    pub fn new(db: SpectrumDatabase, plan: FaultPlan) -> FaultInjector {
        let rng = StdRng::seed_from_u64(plan.seed);
        FaultInjector {
            db,
            plan,
            rng,
            next_revocation: 0,
            last_use: None,
            log: Vec::new(),
        }
    }

    /// The wrapped database (ground truth for compliance checks).
    pub fn database(&self) -> &SpectrumDatabase {
        &self.db
    }

    /// Mutable access to the wrapped database (scripted withdrawals).
    pub fn database_mut(&mut self) -> &mut SpectrumDatabase {
        &mut self.db
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Faults injected so far, in injection order; drains the log.
    pub fn drain_faults(&mut self) -> Vec<(Instant, FaultKind)> {
        std::mem::take(&mut self.log)
    }

    /// Total faults injected so far (including drained ones is *not*
    /// tracked — this is the undrained count).
    pub fn pending_faults(&self) -> usize {
        self.log.len()
    }

    /// Apply every revocation scheduled at or before `now`. Scheduled
    /// state changes happen on the simulation clock, not on request
    /// arrival, so availability ground truth is well-defined even while
    /// the client is backing off. Harnesses call this each tick;
    /// requests also apply it implicitly.
    pub fn advance_to(&mut self, now: Instant) {
        while let Some(&(at, target)) = self.plan.revocations.get(self.next_revocation) {
            if at > now {
                break;
            }
            self.next_revocation += 1;
            let target = target.or(self.last_use);
            if let Some(ch) = target {
                self.db
                    .withdraw_channel(ch, Some(at + self.plan.revocation_hold));
                self.log.push((at, FaultKind::Revocation));
            }
        }
    }

    /// The per-request fault draw shared by every PAWS method: returns
    /// the failure to surface, or `None` to forward the request. Draws
    /// happen in a fixed order so one seed gives one fault sequence.
    fn perturb_request(&mut self, now: Instant) -> Option<PawsFailure> {
        self.advance_to(now);
        if self.plan.in_outage(now) {
            self.log.push((now, FaultKind::Outage));
            return Some(PawsFailure::Unreachable);
        }
        if self.plan.request_loss > 0.0 && self.rng.gen_bool(self.plan.request_loss) {
            self.log.push((now, FaultKind::RequestLost));
            return Some(PawsFailure::PawsTimeout {
                waited: PAWS_CLIENT_TIMEOUT,
            });
        }
        if self.plan.transient_error > 0.0 && self.rng.gen_bool(self.plan.transient_error) {
            self.log.push((now, FaultKind::TransientError));
            return Some(PawsFailure::Protocol(PawsError {
                message_type: "AvailSpectrumResp",
                detail: "transient database error (injected)".to_owned(),
            }));
        }
        None
    }

    /// Response-side delay draw: the database processed the request but
    /// the client times out waiting for the answer.
    fn perturb_response(&mut self, now: Instant) -> Option<PawsFailure> {
        if self.plan.response_delay > 0.0 && self.rng.gen_bool(self.plan.response_delay) {
            self.log.push((now, FaultKind::ResponseDelayed));
            return Some(PawsFailure::PawsTimeout {
                waited: PAWS_CLIENT_TIMEOUT,
            });
        }
        None
    }
}

impl PawsTransport for FaultInjector {
    fn init(&mut self, req: &InitReq, now: Instant) -> Result<InitResp, PawsFailure> {
        if let Some(f) = self.perturb_request(now) {
            return Err(f);
        }
        let resp = self.db.init(req);
        match self.perturb_response(now) {
            Some(f) => Err(f),
            None => Ok(resp),
        }
    }

    fn avail_spectrum(
        &mut self,
        req: &AvailSpectrumReq,
        now: Instant,
    ) -> Result<AvailSpectrumResp, PawsFailure> {
        if let Some(f) = self.perturb_request(now) {
            return Err(f);
        }
        let mut resp = self.db.avail_spectrum(req);
        if let Some(f) = self.perturb_response(now) {
            return Err(f);
        }
        if self.plan.truncated_grants > 0.0
            && self.rng.gen_bool(self.plan.truncated_grants)
            && resp.grants.len() > 1
        {
            self.log.push((now, FaultKind::TruncatedGrants));
            let keep = resp.grants.len().div_ceil(2);
            resp.grants.truncate(keep);
        }
        Ok(resp)
    }

    fn notify_use(&mut self, notify: SpectrumUseNotify, now: Instant) -> Result<(), PawsFailure> {
        if let Some(f) = self.perturb_request(now) {
            return Err(f);
        }
        // A delayed notify still registered at the database (the request
        // arrived; only the acknowledgement was late), but the client
        // must treat the operation start as failed and may not radiate.
        let channel = notify.channel;
        self.db.notify_use(notify);
        match self.perturb_response(now) {
            Some(f) => Err(f),
            None => {
                self.last_use = Some(channel);
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paws::{DeviceDescriptor, GeoLocation};
    use crate::plan::ChannelPlan;
    use cellfi_types::geo::Point;

    fn req(now: Instant) -> AvailSpectrumReq {
        AvailSpectrumReq {
            device: DeviceDescriptor::master_with_clients("ap", 4),
            location: GeoLocation::gps(Point::new(100_000.0, 0.0)),
            request_time_us: now.as_micros(),
        }
    }

    fn injector(plan: FaultPlan) -> FaultInjector {
        FaultInjector::new(SpectrumDatabase::new(ChannelPlan::Eu, vec![]), plan)
    }

    #[test]
    fn no_fault_plan_is_transparent() {
        let mut inj = injector(FaultPlan::none());
        let direct = SpectrumDatabase::new(ChannelPlan::Eu, vec![]);
        let now = Instant::from_secs(5);
        let via = inj
            .avail_spectrum(&req(now), now)
            .expect("no faults planned");
        assert_eq!(via, SpectrumDatabase::avail_spectrum(&direct, &req(now)));
        assert!(inj.drain_faults().is_empty());
    }

    #[test]
    fn outage_window_is_unreachable() {
        let mut plan = FaultPlan::none();
        plan.outages
            .push((Instant::from_secs(10), Instant::from_secs(20)));
        let mut inj = injector(plan);
        let at = |s| Instant::from_secs(s);
        assert!(inj.avail_spectrum(&req(at(9)), at(9)).is_ok());
        assert_eq!(
            inj.avail_spectrum(&req(at(10)), at(10)),
            Err(PawsFailure::Unreachable)
        );
        assert_eq!(
            inj.avail_spectrum(&req(at(19)), at(19)),
            Err(PawsFailure::Unreachable)
        );
        assert!(inj.avail_spectrum(&req(at(20)), at(20)).is_ok());
        let kinds: Vec<FaultKind> = inj.drain_faults().into_iter().map(|(_, k)| k).collect();
        assert_eq!(kinds, vec![FaultKind::Outage, FaultKind::Outage]);
    }

    #[test]
    fn request_loss_is_a_timeout() {
        let mut plan = FaultPlan::none();
        plan.request_loss = 1.0;
        let mut inj = injector(plan);
        let now = Instant::from_secs(1);
        assert_eq!(
            inj.avail_spectrum(&req(now), now),
            Err(PawsFailure::PawsTimeout {
                waited: PAWS_CLIENT_TIMEOUT
            })
        );
    }

    #[test]
    fn transient_error_is_a_protocol_failure() {
        let mut plan = FaultPlan::none();
        plan.transient_error = 1.0;
        let mut inj = injector(plan);
        let now = Instant::from_secs(1);
        match inj.avail_spectrum(&req(now), now) {
            Err(PawsFailure::Protocol(e)) => assert!(e.detail.contains("injected")),
            other => panic!("expected protocol failure, got {other:?}"),
        }
    }

    #[test]
    fn truncation_keeps_a_prefix_of_grants() {
        let mut plan = FaultPlan::none();
        plan.truncated_grants = 1.0;
        let mut inj = injector(plan);
        let now = Instant::from_secs(1);
        let full = SpectrumDatabase::new(ChannelPlan::Eu, vec![])
            .avail_spectrum(&req(now))
            .grants;
        let got = inj
            .avail_spectrum(&req(now), now)
            .expect("truncation still answers")
            .grants;
        assert!(!got.is_empty());
        assert!(got.len() < full.len());
        assert_eq!(got[..], full[..got.len()]);
    }

    #[test]
    fn delayed_response_times_out_but_registers_notify() {
        let mut plan = FaultPlan::none();
        plan.response_delay = 1.0;
        let mut inj = injector(plan);
        let now = Instant::from_secs(3);
        let n = SpectrumUseNotify {
            device: DeviceDescriptor::master_with_clients("ap", 4),
            channel: ChannelId::new(38),
            eirp_dbm: 30.0,
        };
        assert!(matches!(
            inj.notify_use(n, now),
            Err(PawsFailure::PawsTimeout { .. })
        ));
        // The request reached the database even though the ack was late.
        assert_eq!(inj.database().notifications().len(), 1);
    }

    #[test]
    fn scheduled_revocation_withdraws_last_used_channel() {
        let mut plan = FaultPlan::none();
        plan.revocations.push((Instant::from_secs(30), None));
        let mut inj = injector(plan);
        let now = Instant::from_secs(1);
        let ch = ChannelId::new(38);
        inj.notify_use(
            SpectrumUseNotify {
                device: DeviceDescriptor::master_with_clients("ap", 4),
                channel: ch,
                eirp_dbm: 30.0,
            },
            now,
        )
        .expect("no faults planned");
        let loc = Point::new(100_000.0, 0.0);
        assert!(inj.database().is_available(ch, loc, Instant::from_secs(29)));
        inj.advance_to(Instant::from_secs(30));
        assert!(!inj.database().is_available(ch, loc, Instant::from_secs(31)));
        // Reinstated after the hold.
        assert!(inj
            .database()
            .is_available(ch, loc, Instant::from_secs(331)));
        let kinds: Vec<FaultKind> = inj.drain_faults().into_iter().map(|(_, k)| k).collect();
        assert_eq!(kinds, vec![FaultKind::Revocation]);
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let run = || {
            let plan = FaultPlan {
                request_loss: 0.3,
                response_delay: 0.2,
                transient_error: 0.2,
                truncated_grants: 0.3,
                seed: 42,
                ..FaultPlan::none()
            };
            let mut inj = injector(plan);
            let mut outcomes = Vec::new();
            for s in 0..50u64 {
                let now = Instant::from_secs(s);
                outcomes.push(inj.avail_spectrum(&req(now), now).map(|r| r.grants.len()));
            }
            (outcomes, inj.drain_faults())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn intensity_zero_plans_nothing() {
        let plan = FaultPlan::at_intensity(7, 0.0, Instant::from_secs(600));
        assert_eq!(plan, FaultPlan::none_with_seed(7));
    }

    #[test]
    fn intensity_scales_schedule_density() {
        let low = FaultPlan::at_intensity(7, 0.25, Instant::from_secs(600));
        let high = FaultPlan::at_intensity(7, 1.0, Instant::from_secs(600));
        assert!(low.outages.len() <= high.outages.len());
        assert!(high.request_loss > low.request_loss);
        assert!(!high.outages.is_empty());
        assert!(high.outages.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}
