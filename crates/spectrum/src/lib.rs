//! # cellfi-spectrum
//!
//! The TVWS spectrum-database subsystem: everything between the CellFi
//! access point and the regulator's incumbent-protection machinery
//! (paper §2 "Database access compliance", §4.2 "Channel Selection",
//! §6.2 "Channel selection" evaluation).
//!
//! The paper interfaced with a certified Nominet database over the IETF
//! PAWS protocol; this crate substitutes an in-process implementation of
//! the same roles:
//!
//! * [`plan`] — TV channel plans (EU 8 MHz / US 6 MHz rasters) and the
//!   channel ↔ frequency mapping.
//! * [`incumbent`] — primary users: TV stations with protected contours
//!   and wireless microphones with scheduled events.
//! * [`paws`] — PAWS message types (RFC 7545 subset): `INIT`,
//!   `AVAIL_SPECTRUM_REQ/RESP`, `SPECTRUM_USE_NOTIFY`, JSON-serializable.
//! * [`database`] — the database server: evaluates incumbent protection,
//!   answers availability queries with per-channel max EIRP and lease
//!   expiry, and supports operator-side channel withdrawal (the Fig 6
//!   experiment's "channel removed from DB" event).
//! * [`client`] — the access-point-side database client: maintains the
//!   lease, re-queries, and enforces the ETSI rule that transmissions
//!   stop within 60 s of losing the channel.
//! * [`faults`] — deterministic fault injection: a [`faults::FaultPlan`]
//!   schedule and a [`faults::FaultInjector`] transport that perturbs
//!   the PAWS exchange (loss, delay, outages, transient errors,
//!   truncated grants, mid-lease revocation) from a seeded RNG.
//! * [`lifecycle`] — the resilient lease lifecycle: proactive renewal,
//!   deterministic retry/backoff, and the graceful-degradation ladder
//!   (retry → channel fallback → EIRP reduction → vacate with margin).
//! * [`selection`] — CellFi's channel-selection component: picks the best
//!   channel using network-listen (prefer idle; else CellFi-occupied;
//!   never non-CellFi-occupied if avoidable, §4.2) and maps it to an
//!   EARFCN for the LTE stack.
//! * [`profile`] — regulatory rule profiles (ETSI-style vs FCC-style
//!   timing and EIRP envelopes) consumed by the database and lifecycle,
//!   so a regulatory domain is configuration instead of a code fork.
//! * [`cache`] — an availability-response cache keyed on quantized
//!   location whose entries never outlive `min(TTL, lease expiry)`.
//! * [`fleet`] — the multi-tenant spectrum manager: thousands of lease
//!   lifecycles multiplexed over sharded database backends with
//!   per-shard fault plans, desynchronized renewals, response caching
//!   and cross-channel assignment by network-listen occupancy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod database;
pub mod faults;
pub mod fleet;
pub mod incumbent;
pub mod lifecycle;
pub mod paws;
pub mod plan;
pub mod profile;
pub mod selection;

pub use cache::AvailabilityCache;
pub use client::{ClientState, DatabaseClient, OperationError};
pub use database::{ChannelAvailability, SpectrumDatabase};
pub use faults::{FaultInjector, FaultKind, FaultPlan, PawsFailure, PawsTransport};
pub use fleet::{FleetConfig, FleetEvent, FleetStats, SpectrumFleet};
pub use incumbent::Incumbent;
pub use lifecycle::{DegradeStep, LeaseLifecycle, LeasePhase, LifecycleConfig, LifecycleEvent};
pub use paws::{AvailSpectrumReq, AvailSpectrumResp, DeviceDescriptor, GeoLocation};
pub use plan::{ChannelPlan, TvChannel};
pub use profile::RuleProfile;
pub use selection::{ChannelChoice, ChannelSelector, ListenObservation, OccupantKind};
