//! TV channel plans.
//!
//! TV channels are "6 MHz in the US and 8 MHz in the EU" (§3.1). The EU
//! UHF broadcast band runs 470–790 MHz as channels 21–60; the US post-
//! auction UHF TV core runs 470–608 MHz as channels 14–36. CellFi fits a
//! 5 MHz LTE carrier inside a single channel of either plan, and wider
//! LTE bandwidths into runs of contiguous free channels (§7 leaves
//! aggregation as future work — we still expose the contiguity helper).

use cellfi_types::units::Hertz;
use cellfi_types::ChannelId;
use serde::{Deserialize, Serialize};

/// A regional TV channelization.
///
/// ```
/// use cellfi_spectrum::plan::ChannelPlan;
/// // EU channel 38 is the 8 MHz block centred on 610 MHz.
/// let ch = ChannelPlan::Eu.channel(38).unwrap();
/// assert_eq!(ch.centre.mhz(), 610.0);
/// assert_eq!(ch.width.mhz(), 8.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChannelPlan {
    /// EU/ETSI: 8 MHz channels 21–60, 470–790 MHz.
    Eu,
    /// US/FCC: 6 MHz channels 14–36, 470–608 MHz.
    Us,
}

/// One TV channel of a plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TvChannel {
    /// Channel number in its plan.
    pub id: ChannelId,
    /// Centre frequency.
    pub centre: Hertz,
    /// Channel width.
    pub width: Hertz,
}

impl ChannelPlan {
    /// Channel width of this plan.
    pub fn width(self) -> Hertz {
        match self {
            ChannelPlan::Eu => Hertz::from_mhz(8.0),
            ChannelPlan::Us => Hertz::from_mhz(6.0),
        }
    }

    /// Inclusive channel-number range.
    pub fn channel_range(self) -> (u32, u32) {
        match self {
            ChannelPlan::Eu => (21, 60),
            ChannelPlan::Us => (14, 36),
        }
    }

    /// Lower band edge of the first channel.
    fn band_start(self) -> Hertz {
        Hertz::from_mhz(470.0)
    }

    /// The channel with number `n`, if it exists in the plan.
    pub fn channel(self, n: u32) -> Option<TvChannel> {
        let (lo, hi) = self.channel_range();
        if !(lo..=hi).contains(&n) {
            return None;
        }
        let w = self.width().mhz();
        let centre = Hertz::from_mhz(self.band_start().mhz() + w * f64::from(n - lo) + w / 2.0);
        Some(TvChannel {
            id: ChannelId::new(n),
            centre,
            width: self.width(),
        })
    }

    /// All channels of the plan, ascending.
    pub fn channels(self) -> Vec<TvChannel> {
        let (lo, hi) = self.channel_range();
        (lo..=hi)
            .map(|n| {
                self.channel(n)
                    .expect("channel_range() yields only in-plan numbers")
            })
            .collect()
    }

    /// Number of channels in the plan.
    pub fn len(self) -> usize {
        let (lo, hi) = self.channel_range();
        (hi - lo + 1) as usize
    }

    /// Plans are never empty; provided for clippy-idiomatic pairing with
    /// [`ChannelPlan::len`].
    pub fn is_empty(self) -> bool {
        false
    }

    /// Longest run of consecutive channel numbers within `set`, returned
    /// as (first channel, run length). Useful for fitting wider LTE
    /// carriers ("it can thus adapt to several contiguous available TV
    /// channels", §3.1).
    pub fn longest_contiguous_run(self, set: &[ChannelId]) -> Option<(ChannelId, u32)> {
        if set.is_empty() {
            return None;
        }
        let mut nums: Vec<u32> = set.iter().map(|c| c.0).collect();
        nums.sort_unstable();
        nums.dedup();
        let mut best = (nums[0], 1u32);
        let mut run_start = nums[0];
        let mut run_len = 1u32;
        for w in nums.windows(2) {
            if w[1] == w[0] + 1 {
                run_len += 1;
            } else {
                run_start = w[1];
                run_len = 1;
            }
            if run_len > best.1 {
                best = (run_start, run_len);
            }
        }
        Some((ChannelId::new(best.0), best.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eu_channel_38_centre() {
        // 470 + 8·17 + 4 = 610 MHz.
        let ch = ChannelPlan::Eu.channel(38).unwrap();
        assert!((ch.centre.mhz() - 610.0).abs() < 1e-9);
        assert!((ch.width.mhz() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn us_channel_14_centre() {
        // 470 + 3 = 473 MHz.
        let ch = ChannelPlan::Us.channel(14).unwrap();
        assert!((ch.centre.mhz() - 473.0).abs() < 1e-9);
        assert!((ch.width.mhz() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn eu_top_channel_upper_edge_is_790() {
        let ch = ChannelPlan::Eu.channel(60).unwrap();
        assert!((ch.centre.mhz() + 4.0 - 790.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_plan_channel_is_none() {
        assert!(ChannelPlan::Eu.channel(20).is_none());
        assert!(ChannelPlan::Eu.channel(61).is_none());
        assert!(ChannelPlan::Us.channel(37).is_none());
    }

    #[test]
    fn plan_lengths() {
        assert_eq!(ChannelPlan::Eu.len(), 40);
        assert_eq!(ChannelPlan::Us.len(), 23);
        assert_eq!(ChannelPlan::Eu.channels().len(), 40);
    }

    #[test]
    fn five_mhz_lte_fits_either_plan() {
        assert!(ChannelPlan::Us.width().mhz() >= 5.0);
        assert!(ChannelPlan::Eu.width().mhz() >= 5.0);
    }

    #[test]
    fn channels_do_not_overlap_and_ascend() {
        for plan in [ChannelPlan::Eu, ChannelPlan::Us] {
            let chs = plan.channels();
            for w in chs.windows(2) {
                let upper_edge = w[0].centre.mhz() + w[0].width.mhz() / 2.0;
                let lower_edge = w[1].centre.mhz() - w[1].width.mhz() / 2.0;
                assert!((upper_edge - lower_edge).abs() < 1e-9, "{plan:?}");
            }
        }
    }

    #[test]
    fn contiguous_run_detection() {
        let plan = ChannelPlan::Eu;
        let set = [
            ChannelId::new(21),
            ChannelId::new(30),
            ChannelId::new(31),
            ChannelId::new(32),
            ChannelId::new(40),
        ];
        let (start, len) = plan.longest_contiguous_run(&set).unwrap();
        assert_eq!(start, ChannelId::new(30));
        assert_eq!(len, 3);
    }

    #[test]
    fn contiguous_run_handles_duplicates_and_empty() {
        let plan = ChannelPlan::Eu;
        assert!(plan.longest_contiguous_run(&[]).is_none());
        let set = [ChannelId::new(25), ChannelId::new(25)];
        assert_eq!(
            plan.longest_contiguous_run(&set),
            Some((ChannelId::new(25), 1))
        );
    }
}
