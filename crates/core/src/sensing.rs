//! Sensing mechanisms (§5.1, §6.3.2, §6.3.3).
//!
//! Three pieces:
//!
//! * [`NeighborClientEstimator`] — counts active clients from overheard
//!   PRACH preambles. "CellFi nodes use PDCCH-order RACH primitive of LTE
//!   to solicit PRACH preambles every second. This allows sensing nodes
//!   to expire each estimate after 1 second and account for nodes that
//!   become inactive."
//! * [`CqiInterferenceDetector`] — flags a subchannel as interfered when
//!   CQI drops below 60 % of the max observed in a sliding window, for 10
//!   consecutive samples (§6.3.2). The sliding max uses a monotonic deque
//!   so a long-gone peak stops masking a genuine degradation.
//! * [`ImperfectSensing`] — the measured error model the paper feeds its
//!   ns-3 runs: 80 % probability of detecting strong interference, 2 %
//!   false positives per window.

use cellfi_types::time::{Duration, Instant};
use cellfi_types::UeId;
use rand::Rng;
use std::collections::{BTreeMap, VecDeque};

/// PRACH-based neighbourhood client counter.
#[derive(Debug, Clone)]
pub struct NeighborClientEstimator {
    /// Last time each client's preamble was heard.
    last_heard: BTreeMap<UeId, Instant>,
    /// Expiry horizon (paper: 1 s).
    expiry: Duration,
}

impl Default for NeighborClientEstimator {
    fn default() -> Self {
        NeighborClientEstimator::new(Duration::IM_EPOCH)
    }
}

impl NeighborClientEstimator {
    /// Estimator with a custom expiry horizon.
    pub fn new(expiry: Duration) -> NeighborClientEstimator {
        NeighborClientEstimator {
            last_heard: BTreeMap::new(),
            expiry,
        }
    }

    /// Record an overheard (or solicited) preamble from `ue` at `now`.
    pub fn observe(&mut self, ue: UeId, now: Instant) {
        self.last_heard.insert(ue, now);
    }

    /// Active-client estimate at `now`: clients heard within the expiry
    /// horizon. This is `NP_i` (when the AP also feeds its own clients'
    /// preambles in, which it always hears).
    pub fn active_count(&self, now: Instant) -> u32 {
        self.last_heard
            .values()
            .filter(|&&t| now.duration_since(t.min(now)) < self.expiry)
            .count() as u32
    }

    /// Drop expired entries (bounded memory on long runs).
    pub fn compact(&mut self, now: Instant) {
        let expiry = self.expiry;
        self.last_heard
            .retain(|_, &mut t| now.duration_since(t.min(now)) < expiry);
    }
}

/// Sliding-window maximum over the last `window` samples (monotonic
/// deque; O(1) amortized per push).
#[derive(Debug, Clone)]
struct SlidingMax {
    window: usize,
    /// (sample index, value), values decreasing.
    deque: VecDeque<(u64, u8)>,
    next_index: u64,
}

impl SlidingMax {
    fn new(window: usize) -> SlidingMax {
        SlidingMax {
            window,
            deque: VecDeque::new(),
            next_index: 0,
        }
    }

    fn push(&mut self, value: u8) {
        let idx = self.next_index;
        self.next_index += 1;
        while self.deque.back().is_some_and(|&(_, v)| v <= value) {
            self.deque.pop_back();
        }
        self.deque.push_back((idx, value));
        let horizon = idx.saturating_sub(self.window as u64 - 1);
        while self.deque.front().is_some_and(|&(i, _)| i < horizon) {
            self.deque.pop_front();
        }
    }

    fn max(&self) -> Option<u8> {
        self.deque.front().map(|&(_, v)| v)
    }
}

/// Per-(client, subchannel) CQI-drop interference detector.
///
/// Tuning from §6.3.2: "we consider the maximum CQI observed within a
/// time window as an estimate of CQI for a channel without interference.
/// We declare that interference is present if we observe a CQI report
/// below 60 % of this maximum value over a window of 10 consecutive
/// samples." Measured: < 2 % false positives, 80 % detection of strong
/// interference.
#[derive(Debug, Clone)]
pub struct CqiInterferenceDetector {
    reference: SlidingMax,
    consecutive_low: u32,
    /// Detection threshold as a fraction of the reference max.
    pub threshold_frac: f64,
    /// Consecutive low samples required to declare interference.
    pub required_samples: u32,
}

impl Default for CqiInterferenceDetector {
    fn default() -> Self {
        // Reference window of 500 samples = 1 s of 2 ms CQI reports.
        CqiInterferenceDetector::new(500, 0.6, 10)
    }
}

impl CqiInterferenceDetector {
    /// Detector with explicit window (samples), threshold fraction and
    /// consecutive-sample requirement.
    pub fn new(window: usize, threshold_frac: f64, required_samples: u32) -> Self {
        assert!(window > 0 && (0.0..1.0).contains(&threshold_frac) && required_samples > 0);
        CqiInterferenceDetector {
            reference: SlidingMax::new(window),
            consecutive_low: 0,
            threshold_frac,
            required_samples,
        }
    }

    /// Feed one CQI sample (every 2 ms); returns `true` while
    /// interference is declared.
    pub fn push(&mut self, cqi: u8) -> bool {
        self.reference.push(cqi);
        let reference = self.reference.max().unwrap_or(0);
        let low = f64::from(cqi) < self.threshold_frac * f64::from(reference);
        if low {
            self.consecutive_low += 1;
        } else {
            self.consecutive_low = 0;
        }
        self.interfered()
    }

    /// Current verdict.
    pub fn interfered(&self) -> bool {
        self.consecutive_low >= self.required_samples
    }
}

/// The paper's measured sensing-error model, used by the large-scale
/// simulations instead of running the sample-level detector per client
/// ("We have introduced 2 % false positives and 80 % probability of
/// correct interference detection", §6.3.4).
#[derive(Debug, Clone, Copy)]
pub struct ImperfectSensing {
    /// Probability of flagging real, strong interference.
    pub p_detect: f64,
    /// Probability of a spurious flag on a clean subchannel (per epoch).
    pub p_false_positive: f64,
}

impl Default for ImperfectSensing {
    fn default() -> Self {
        ImperfectSensing {
            p_detect: 0.8,
            p_false_positive: 0.02,
        }
    }
}

impl ImperfectSensing {
    /// Perfect sensing (for ablations).
    pub const fn perfect() -> ImperfectSensing {
        ImperfectSensing {
            p_detect: 1.0,
            p_false_positive: 0.0,
        }
    }

    /// Sample the detector output given the ground truth.
    pub fn observe<R: Rng>(&self, truly_interfered: bool, rng: &mut R) -> bool {
        if truly_interfered {
            rng.gen::<f64>() < self.p_detect
        } else {
            rng.gen::<f64>() < self.p_false_positive
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn estimator_counts_recent_preambles() {
        let mut e = NeighborClientEstimator::default();
        e.observe(UeId::new(1), Instant::from_millis(100));
        e.observe(UeId::new(2), Instant::from_millis(500));
        assert_eq!(e.active_count(Instant::from_millis(600)), 2);
    }

    #[test]
    fn estimator_expires_after_one_second() {
        let mut e = NeighborClientEstimator::default();
        e.observe(UeId::new(1), Instant::from_millis(100));
        assert_eq!(e.active_count(Instant::from_millis(1_099)), 1);
        assert_eq!(e.active_count(Instant::from_millis(1_100)), 0);
    }

    #[test]
    fn estimator_refresh_extends_life() {
        let mut e = NeighborClientEstimator::default();
        e.observe(UeId::new(1), Instant::from_millis(0));
        e.observe(UeId::new(1), Instant::from_millis(900));
        assert_eq!(e.active_count(Instant::from_millis(1_500)), 1);
    }

    #[test]
    fn estimator_compact_drops_stale() {
        let mut e = NeighborClientEstimator::default();
        for i in 0..100 {
            e.observe(UeId::new(i), Instant::from_millis(u64::from(i)));
        }
        e.compact(Instant::from_secs(10));
        assert_eq!(e.active_count(Instant::from_secs(10)), 0);
    }

    #[test]
    fn detector_stays_quiet_on_stable_channel() {
        let mut d = CqiInterferenceDetector::default();
        for _ in 0..1000 {
            assert!(!d.push(10));
        }
    }

    #[test]
    fn detector_ignores_brief_dips() {
        // A fade shorter than 10 samples must not trigger (§6.3.2: "the
        // estimator should not trigger subchannel reallocation due to
        // mis-identification").
        let mut d = CqiInterferenceDetector::default();
        for _ in 0..100 {
            d.push(10);
        }
        for _ in 0..9 {
            assert!(!d.push(3));
        }
        assert!(!d.push(10), "recovery resets the count");
        for _ in 0..9 {
            d.push(3);
        }
        assert!(!d.interfered());
    }

    #[test]
    fn detector_fires_after_ten_consecutive_low_samples() {
        let mut d = CqiInterferenceDetector::default();
        for _ in 0..100 {
            d.push(10);
        }
        let mut fired_at = None;
        for i in 0..15 {
            if d.push(4) && fired_at.is_none() {
                fired_at = Some(i + 1);
            }
        }
        assert_eq!(fired_at, Some(10));
    }

    #[test]
    fn sixty_percent_threshold_boundary() {
        let mut d = CqiInterferenceDetector::default();
        for _ in 0..50 {
            d.push(10);
        }
        // 6 = exactly 60 % of 10: NOT below threshold → no trigger.
        for _ in 0..20 {
            assert!(!d.push(6));
        }
        // 5 < 60 % of 10 → triggers after 10.
        for _ in 0..10 {
            d.push(5);
        }
        assert!(d.interfered());
    }

    #[test]
    fn reference_max_slides_out_of_window() {
        // After the big peak leaves the window, a lower plateau becomes
        // the reference, so the same absolute CQI is no longer "low".
        let mut d = CqiInterferenceDetector::new(20, 0.6, 10);
        for _ in 0..5 {
            d.push(15);
        }
        for _ in 0..20 {
            d.push(8); // pushes the 15s out of the 20-sample window
        }
        // 5 vs reference 8: 5 > 0.6·8 = 4.8 → clean.
        for _ in 0..20 {
            assert!(!d.push(5));
        }
    }

    #[test]
    fn detector_recovers_when_interference_stops() {
        let mut d = CqiInterferenceDetector::default();
        for _ in 0..100 {
            d.push(12);
        }
        for _ in 0..30 {
            d.push(2);
        }
        assert!(d.interfered());
        assert!(!d.push(12), "one good sample clears the verdict");
    }

    #[test]
    fn imperfect_sensing_matches_paper_rates() {
        let m = ImperfectSensing::default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let n = 20_000;
        let detected = (0..n).filter(|_| m.observe(true, &mut rng)).count();
        let false_pos = (0..n).filter(|_| m.observe(false, &mut rng)).count();
        let d_rate = detected as f64 / f64::from(n);
        let fp_rate = false_pos as f64 / f64::from(n);
        assert!((d_rate - 0.8).abs() < 0.01, "detect {d_rate}");
        assert!((fp_rate - 0.02).abs() < 0.005, "fp {fp_rate}");
    }

    #[test]
    fn perfect_sensing_is_deterministic() {
        let m = ImperfectSensing::perfect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        assert!(m.observe(true, &mut rng));
        assert!(!m.observe(false, &mut rng));
    }
}
