//! # cellfi-core
//!
//! The paper's primary contribution: **fully decentralized interference
//! management for unplanned LTE deployments** (§4.3, §5). Each access
//! point, with no communication to any other, decides every second which
//! subchannels it will reserve, based purely on what its radio can sense:
//!
//! 1. **Sensing** ([`sensing`]) — count contending clients by overhearing
//!    PRACH preambles (expiring each estimate after 1 s), and detect
//!    per-subchannel interference from drops in sub-band CQI reports
//!    (max-in-window reference, 60 % threshold, 10 consecutive samples;
//!    measured 2 % false positives and 80 % detection, which the
//!    imperfect-sensing model reproduces).
//! 2. **Distributed share calculation** ([`share`]) — reserve
//!    `S_i = N_i · S / NP_i` subchannels (own active clients × per-client
//!    fair share of the neighbourhood).
//! 3. **Distributed subchannel selection** ([`hopping`], [`bucket`]) —
//!    randomized hopping: each owned subchannel carries an exponential
//!    bucket (mean λ = 10) that drains by the fraction of scheduled time
//!    a client saw it as bad; at zero, hop to the maximum-utility
//!    subchannel.
//! 4. **Channel re-use packing** ([`reuse`]) — drift to the lowest-index
//!    subchannel observed free so that interference-free clients across
//!    networks stack onto the same spectrum (up to 2× gain for exposed
//!    clients).
//!
//! [`manager::InterferenceManager`] composes these into the per-epoch
//! component of Fig 3; [`oracle`] provides the centralized FERMI-style
//! upper-bound allocator the paper compares against; [`graph`] carries
//! the conflict-graph abstraction; [`theory`] implements the §5.5
//! analytical model and verifies Theorem 1's
//! `O(M log n / ((1 − p)·γ))` convergence bound empirically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bucket;
pub mod graph;
pub mod hopping;
pub mod manager;
pub mod oracle;
pub mod reuse;
pub mod sensing;
pub mod share;
pub mod theory;

pub use graph::ConflictGraph;
pub use manager::{
    ClientEpochStats, EpochDecision, EpochInput, InterferenceManager, ManagerConfig,
};
pub use oracle::OracleAllocator;
pub use sensing::{CqiInterferenceDetector, ImperfectSensing, NeighborClientEstimator};
pub use share::fair_share;
