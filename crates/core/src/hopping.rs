//! Distributed subchannel selection: the hopping procedure (§5.3, Fig 4).
//!
//! ```text
//! function Hopping(AP i)
//!     C_j ← S_i subchannels, picked randomly
//!     for each subchannel k:  b_ik ← exp(λ)
//!     for each phase:
//!         for each occupied subchannel k:
//!             if b_ik = 0:
//!                 k' ← subchannel with maximum utility
//!                 swap k with k'
//! ```
//!
//! [`Hopper`] owns the per-AP state: the occupied subchannel set with its
//! exponential buckets. The caller (the interference manager) supplies a
//! *utility* function — "the sum of throughput achievable (as estimated
//! from the CQI reading) by all the clients scheduled over the previous
//! subchannel in the recent past scaled by the fraction of time that
//! client was scheduled" — and the per-epoch feedback that drains
//! buckets.

use crate::bucket::Bucket;
use cellfi_types::SubchannelId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Per-client observation on one occupied subchannel over the last epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientObservation {
    /// Fraction of epoch time the client was scheduled on the subchannel.
    pub frac_scheduled: f64,
    /// Whether the client observed the subchannel as bad (interference
    /// detector verdict).
    pub bad: bool,
}

/// Epoch feedback for one occupied subchannel.
#[derive(Debug, Clone)]
pub struct SubchannelFeedback {
    /// The subchannel.
    pub subchannel: SubchannelId,
    /// Observations from clients that were scheduled on it.
    pub clients: Vec<ClientObservation>,
}

/// A hop taken during an epoch, with the utilities that drove it —
/// recorded so convergence traces can show *why* the hopper moved, not
/// just where.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hop {
    /// Subchannel given up.
    pub from: SubchannelId,
    /// Subchannel acquired instead.
    pub to: SubchannelId,
    /// Utility of the drained subchannel at hop time.
    pub from_utility: f64,
    /// Utility of the acquired subchannel (the maximum over unowned
    /// candidates, ties broken randomly).
    pub to_utility: f64,
}

/// The hopping state of one access point.
#[derive(Debug, Clone)]
pub struct Hopper {
    n_subchannels: u32,
    lambda: f64,
    owned: BTreeMap<SubchannelId, Bucket>,
    rng: StdRng,
    /// Cumulative hop count (convergence diagnostics, §6.3.4).
    pub total_hops: u64,
}

impl Hopper {
    /// New hopper over `n_subchannels` with bucket mean `lambda`.
    pub fn new(n_subchannels: u32, lambda: f64, seed: u64) -> Hopper {
        assert!(n_subchannels > 0, "need at least one subchannel");
        Hopper {
            n_subchannels,
            lambda,
            owned: BTreeMap::new(),
            rng: StdRng::seed_from_u64(seed),
            total_hops: 0,
        }
    }

    /// Occupied subchannels, ascending.
    pub fn owned(&self) -> Vec<SubchannelId> {
        self.owned.keys().copied().collect()
    }

    /// Number of occupied subchannels.
    pub fn owned_count(&self) -> u32 {
        self.owned.len() as u32
    }

    /// Scheduler mask: `mask[s]` is true when subchannel `s` is occupied.
    pub fn mask(&self) -> Vec<bool> {
        let mut m = vec![false; self.n_subchannels as usize];
        for s in self.owned.keys() {
            m[s.index()] = true;
        }
        m
    }

    /// Bucket value of an owned subchannel (diagnostics).
    pub fn bucket_value(&self, s: SubchannelId) -> Option<f64> {
        self.owned.get(&s).map(|b| b.value())
    }

    fn unowned(&self) -> Vec<SubchannelId> {
        (0..self.n_subchannels)
            .map(SubchannelId::new)
            .filter(|s| !self.owned.contains_key(s))
            .collect()
    }

    /// Pick the unowned subchannel with maximum utility; ties broken
    /// uniformly at random (the randomization that breaks AP symmetry).
    fn best_unowned(&mut self, utility: &dyn Fn(SubchannelId) -> f64) -> Option<SubchannelId> {
        let candidates = self.unowned();
        if candidates.is_empty() {
            return None;
        }
        let best = candidates
            .iter()
            .map(|&s| utility(s))
            .fold(f64::NEG_INFINITY, f64::max);
        let top: Vec<SubchannelId> = candidates
            .into_iter()
            .filter(|&s| utility(s) >= best - 1e-12)
            .collect();
        top.choose(&mut self.rng).copied()
    }

    /// Grow or shrink the occupied set towards `share` subchannels.
    ///
    /// Growth follows Fig 4's initialization: new subchannels are picked
    /// randomly among the unowned (weighted acquisition would need CQI
    /// history the AP does not yet have for channels it never used), each
    /// with a fresh exponential bucket. Shrink releases the
    /// lowest-utility owned subchannels first.
    pub fn adjust_to_share(&mut self, share: u32, utility: &dyn Fn(SubchannelId) -> f64) {
        let share = share.min(self.n_subchannels);
        while self.owned_count() < share {
            let mut candidates = self.unowned();
            if candidates.is_empty() {
                break;
            }
            candidates.shuffle(&mut self.rng);
            let s = candidates[0];
            let b = Bucket::draw(self.lambda, &mut self.rng);
            self.owned.insert(s, b);
        }
        while self.owned_count() > share {
            let worst = self
                .owned
                .keys()
                .copied()
                .min_by(|a, b| {
                    utility(*a)
                        .partial_cmp(&utility(*b))
                        .expect("finite utilities")
                })
                .expect("non-empty owned set");
            self.owned.remove(&worst);
        }
    }

    /// Apply one epoch of feedback: drain buckets per §5.3 and hop on
    /// empty buckets to the maximum-utility unowned subchannel. Returns
    /// the hops taken.
    pub fn apply_feedback(
        &mut self,
        feedback: &[SubchannelFeedback],
        utility: &dyn Fn(SubchannelId) -> f64,
    ) -> Vec<Hop> {
        let mut hops = Vec::new();
        for fb in feedback {
            let Some(bucket) = self.owned.get_mut(&fb.subchannel) else {
                continue; // stale feedback for a channel we already left
            };
            let mut empty = bucket.is_empty();
            for obs in &fb.clients {
                if obs.bad {
                    empty |= bucket.drain(obs.frac_scheduled.clamp(0.0, 1.0));
                }
            }
            if empty {
                self.owned.remove(&fb.subchannel);
                let to = self.best_unowned(utility).unwrap_or(fb.subchannel);
                let b = Bucket::draw(self.lambda, &mut self.rng);
                self.owned.insert(to, b);
                if to != fb.subchannel {
                    hops.push(Hop {
                        from: fb.subchannel,
                        to,
                        from_utility: utility(fb.subchannel),
                        to_utility: utility(to),
                    });
                    self.total_hops += 1;
                }
                // `to == from` means every other subchannel is owned too:
                // re-draw the bucket in place rather than shrink below the
                // computed share.
            }
        }
        hops
    }

    /// Forcibly move an owned subchannel (used by the re-use packing
    /// heuristic). Draws a fresh bucket for the destination.
    pub fn relocate(&mut self, from: SubchannelId, to: SubchannelId) {
        assert!(self.owned.contains_key(&from), "relocate of unowned {from}");
        assert!(!self.owned.contains_key(&to), "relocate onto owned {to}");
        self.owned.remove(&from);
        let b = Bucket::draw(self.lambda, &mut self.rng);
        self.owned.insert(to, b);
    }

    /// Uniform random draw in `[0, 1)` from the hopper's own stream
    /// (lets the manager make randomized decisions without a second RNG).
    pub fn gen_uniform(&mut self) -> f64 {
        self.rng.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_utility(_: SubchannelId) -> f64 {
        1.0
    }

    fn hopper() -> Hopper {
        Hopper::new(13, 10.0, 42)
    }

    #[test]
    fn starts_empty() {
        let h = hopper();
        assert_eq!(h.owned_count(), 0);
        assert!(h.mask().iter().all(|&b| !b));
    }

    #[test]
    fn adjust_grows_to_share() {
        let mut h = hopper();
        h.adjust_to_share(6, &flat_utility);
        assert_eq!(h.owned_count(), 6);
        let owned = h.owned();
        let mut dedup = owned.clone();
        dedup.dedup();
        assert_eq!(owned, dedup, "no duplicates");
    }

    #[test]
    fn adjust_shrinks_lowest_utility_first() {
        let mut h = hopper();
        h.adjust_to_share(13, &flat_utility);
        // Utility is the subchannel index: shrinking to 3 must keep 10,11,12.
        let utility = |s: SubchannelId| f64::from(s.0);
        h.adjust_to_share(3, &utility);
        assert_eq!(
            h.owned(),
            vec![
                SubchannelId::new(10),
                SubchannelId::new(11),
                SubchannelId::new(12)
            ]
        );
    }

    #[test]
    fn share_clamped_to_total() {
        let mut h = hopper();
        h.adjust_to_share(99, &flat_utility);
        assert_eq!(h.owned_count(), 13);
    }

    #[test]
    fn good_observations_never_cause_hops() {
        let mut h = hopper();
        h.adjust_to_share(4, &flat_utility);
        let before = h.owned();
        for _ in 0..50 {
            let fb: Vec<SubchannelFeedback> = before
                .iter()
                .map(|&s| SubchannelFeedback {
                    subchannel: s,
                    clients: vec![ClientObservation {
                        frac_scheduled: 1.0,
                        bad: false,
                    }],
                })
                .collect();
            let hops = h.apply_feedback(&fb, &flat_utility);
            assert!(hops.is_empty());
        }
        assert_eq!(h.owned(), before);
    }

    #[test]
    fn persistent_interference_forces_hop() {
        let mut h = hopper();
        h.adjust_to_share(1, &flat_utility);
        let victim = h.owned()[0];
        let mut hopped = false;
        for _ in 0..200 {
            let current = h.owned()[0];
            let fb = vec![SubchannelFeedback {
                subchannel: current,
                clients: vec![ClientObservation {
                    frac_scheduled: 1.0,
                    bad: true,
                }],
            }];
            let hops = h.apply_feedback(&fb, &flat_utility);
            if !hops.is_empty() {
                assert_eq!(hops[0].from, current);
                assert_ne!(hops[0].to, current);
                hopped = true;
                break;
            }
        }
        assert!(hopped, "bucket never drained from {victim}");
        assert_eq!(h.owned_count(), 1, "share preserved across hop");
    }

    #[test]
    fn hop_targets_maximum_utility() {
        let mut h = Hopper::new(4, 0.5, 7);
        h.adjust_to_share(1, &|s| if s.0 == 0 { 1.0 } else { 0.0 });
        // Force ownership of subchannel 0 deterministically.
        let owned = h.owned()[0];
        if owned != SubchannelId::new(0) {
            h.relocate(owned, SubchannelId::new(0));
        }
        let utility = |s: SubchannelId| match s.0 {
            2 => 10.0,
            _ => 1.0,
        };
        // Drain until hop; target must be subchannel 2.
        loop {
            let fb = vec![SubchannelFeedback {
                subchannel: h.owned()[0],
                clients: vec![ClientObservation {
                    frac_scheduled: 1.0,
                    bad: true,
                }],
            }];
            let hops = h.apply_feedback(&fb, &utility);
            if let Some(hop) = hops.first() {
                assert_eq!(hop.to, SubchannelId::new(2));
                break;
            }
        }
    }

    #[test]
    fn drain_scales_with_scheduled_fraction() {
        // A client scheduled 10 % of the time drains slowly: with λ = 10
        // the expected survival is ~100 epochs; assert it survives 20.
        let mut h = Hopper::new(13, 10.0, 9);
        h.adjust_to_share(1, &flat_utility);
        let s = h.owned()[0];
        let mut survived = 0;
        for _ in 0..20 {
            let fb = vec![SubchannelFeedback {
                subchannel: s,
                clients: vec![ClientObservation {
                    frac_scheduled: 0.1,
                    bad: true,
                }],
            }];
            if h.apply_feedback(&fb, &flat_utility).is_empty() {
                survived += 1;
            }
        }
        assert!(survived >= 15, "survived only {survived}/20 epochs");
    }

    #[test]
    fn full_occupancy_redraws_in_place() {
        let mut h = Hopper::new(2, 1.0, 3);
        h.adjust_to_share(2, &flat_utility);
        // Both owned; interference on one cannot hop anywhere.
        let s = h.owned()[0];
        for _ in 0..100 {
            let fb = vec![SubchannelFeedback {
                subchannel: s,
                clients: vec![ClientObservation {
                    frac_scheduled: 1.0,
                    bad: true,
                }],
            }];
            let hops = h.apply_feedback(&fb, &flat_utility);
            assert!(hops.is_empty());
            assert_eq!(h.owned_count(), 2);
        }
    }

    #[test]
    fn stale_feedback_ignored() {
        let mut h = hopper();
        h.adjust_to_share(1, &flat_utility);
        let not_owned = h.unowned()[0];
        let fb = vec![SubchannelFeedback {
            subchannel: not_owned,
            clients: vec![ClientObservation {
                frac_scheduled: 1.0,
                bad: true,
            }],
        }];
        let hops = h.apply_feedback(&fb, &flat_utility);
        assert!(hops.is_empty());
        assert_eq!(h.owned_count(), 1);
    }

    #[test]
    fn relocate_moves_ownership() {
        let mut h = hopper();
        h.adjust_to_share(1, &flat_utility);
        let from = h.owned()[0];
        let to = h.unowned()[0];
        h.relocate(from, to);
        assert_eq!(h.owned(), vec![to]);
    }

    #[test]
    #[should_panic(expected = "relocate of unowned")]
    fn relocate_unowned_panics() {
        let mut h = hopper();
        h.relocate(SubchannelId::new(0), SubchannelId::new(1));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// After any sequence of share adjustments, the owned count is
            /// exactly min(last share, total) and the set has no duplicates.
            #[test]
            fn adjust_tracks_share(shares in proptest::collection::vec(0u32..20, 1..12)) {
                let mut h = Hopper::new(13, 10.0, 3);
                for &sh in &shares {
                    h.adjust_to_share(sh, &flat_utility);
                    prop_assert_eq!(h.owned_count(), sh.min(13));
                    let owned = h.owned();
                    let mut dedup = owned.clone();
                    dedup.dedup();
                    prop_assert_eq!(owned.len(), dedup.len());
                    prop_assert!(owned.iter().all(|s| s.0 < 13));
                }
            }

            /// Feedback never changes the owned count (hops swap, redraws
            /// keep), and hop destinations are always previously unowned.
            #[test]
            fn feedback_preserves_share(
                share in 1u32..13,
                rounds in 1usize..30,
                bad_bits in proptest::collection::vec(any::<bool>(), 30),
            ) {
                let mut h = Hopper::new(13, 2.0, 9);
                h.adjust_to_share(share, &flat_utility);
                for r in 0..rounds {
                    let before = h.owned();
                    let fb: Vec<SubchannelFeedback> = before
                        .iter()
                        .map(|&s| SubchannelFeedback {
                            subchannel: s,
                            clients: vec![ClientObservation {
                                frac_scheduled: 1.0,
                                bad: bad_bits[r % bad_bits.len()],
                            }],
                        })
                        .collect();
                    let hops = h.apply_feedback(&fb, &flat_utility);
                    prop_assert_eq!(h.owned_count(), share.min(13));
                    let after = h.owned();
                    for hop in hops {
                        prop_assert!(before.contains(&hop.from));
                        prop_assert!(hop.from != hop.to, "self-hop recorded");
                        // A destination may have been vacated by an earlier
                        // hop in the same epoch; what must hold is that it
                        // is owned afterwards.
                        prop_assert!(after.contains(&hop.to));
                    }
                }
            }
        }
    }

    #[test]
    fn mask_matches_owned() {
        let mut h = hopper();
        h.adjust_to_share(5, &flat_utility);
        let mask = h.mask();
        for s in 0..13u32 {
            assert_eq!(mask[s as usize], h.owned().contains(&SubchannelId::new(s)));
        }
    }
}
