//! Exponential bucket values (§5.3 "Bucket Updates").
//!
//! Every subchannel an AP occupies carries a bucket value drawn from an
//! exponential distribution with mean λ (the paper found λ = 10 to work
//! well). Each epoch, for every client scheduled on the subchannel that
//! observed it as *bad*, the bucket drains by `frac_j` — the fraction of
//! time that client was scheduled on it. When the bucket reaches zero,
//! the AP gives the subchannel up and hops.
//!
//! Why exponential and why drain-by-usage: the memoryless draw randomizes
//! which of two colliding APs backs down first (symmetry breaking), and
//! "the bucket update mechanism makes sure that a new AP is able to win
//! a subchannel irrespective of how long the previous AP has been
//! operating on it" — seniority confers no advantage because the drained
//! amount depends only on current interference, and a fresh draw is
//! bounded in expectation.

use rand::Rng;

/// Mean of the exponential bucket distribution; "we found λ = 10 to be a
/// good choice experimentally" (§5.3).
pub const DEFAULT_LAMBDA: f64 = 10.0;

/// The bucket of one occupied subchannel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bucket {
    value: f64,
}

impl Bucket {
    /// Draw a fresh bucket: `Exp(mean = lambda)`.
    pub fn draw<R: Rng>(lambda: f64, rng: &mut R) -> Bucket {
        assert!(lambda > 0.0, "lambda must be positive");
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        Bucket {
            value: -lambda * u.ln(),
        }
    }

    /// A bucket with an explicit value (tests and resume paths).
    pub fn with_value(value: f64) -> Bucket {
        Bucket {
            value: value.max(0.0),
        }
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Drain by a client's scheduled fraction after a bad observation:
    /// `b(t+1) = b(t) − frac_j`. Returns `true` when the bucket is now
    /// empty and the subchannel must be given up.
    pub fn drain(&mut self, frac: f64) -> bool {
        assert!(
            (0.0..=1.0 + 1e-9).contains(&frac),
            "scheduled fraction must be in [0,1], got {frac}"
        );
        self.value = (self.value - frac).max(0.0);
        self.is_empty()
    }

    /// Whether the bucket has reached zero.
    pub fn is_empty(&self) -> bool {
        self.value <= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(7)
    }

    #[test]
    fn draw_is_positive() {
        let mut r = rng();
        for _ in 0..1000 {
            let b = Bucket::draw(DEFAULT_LAMBDA, &mut r);
            assert!(b.value() > 0.0);
            assert!(!b.is_empty());
        }
    }

    #[test]
    fn draw_mean_matches_lambda() {
        let mut r = rng();
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| Bucket::draw(DEFAULT_LAMBDA, &mut r).value())
            .sum::<f64>()
            / f64::from(n);
        assert!((mean - 10.0).abs() < 0.25, "mean {mean}");
    }

    #[test]
    fn drain_subtracts_and_clamps() {
        let mut b = Bucket::with_value(1.0);
        assert!(!b.drain(0.4));
        assert!((b.value() - 0.6).abs() < 1e-12);
        assert!(b.drain(0.7)); // clamps at zero and reports empty
        assert_eq!(b.value(), 0.0);
        assert!(b.is_empty());
    }

    #[test]
    fn full_time_bad_client_empties_in_about_lambda_epochs() {
        // A client scheduled 100 % of the time on an interfered subchannel
        // drains 1.0 per epoch: the bucket survives ≈ λ epochs — the time
        // scale of contention resolution.
        let mut r = rng();
        let mut epochs = Vec::new();
        for _ in 0..500 {
            let mut b = Bucket::draw(DEFAULT_LAMBDA, &mut r);
            let mut n = 0u32;
            while !b.drain(1.0) {
                n += 1;
            }
            epochs.push(f64::from(n) + 1.0);
        }
        let mean = epochs.iter().sum::<f64>() / epochs.len() as f64;
        assert!((mean - 10.0).abs() < 1.0, "mean epochs {mean}");
    }

    #[test]
    fn lightly_scheduled_client_drains_slowly() {
        // frac = 0.1 → 10× the survival time of a fully scheduled client:
        // interference that barely affects service barely costs spectrum.
        let mut b = Bucket::with_value(1.0);
        for _ in 0..9 {
            assert!(!b.drain(0.1));
        }
        assert!(b.drain(0.11));
    }

    #[test]
    fn seniority_is_irrelevant() {
        // Two buckets with the same value drain identically regardless of
        // how long each has been held — the "new AP can win" property.
        let mut old = Bucket::with_value(3.0);
        let mut new = Bucket::with_value(3.0);
        for _ in 0..2 {
            old.drain(1.0);
            new.drain(1.0);
        }
        assert_eq!(old.value(), new.value());
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn bad_fraction_panics() {
        let mut b = Bucket::with_value(1.0);
        let _ = b.drain(1.5);
    }

    #[test]
    #[should_panic(expected = "lambda must be positive")]
    fn bad_lambda_panics() {
        let mut r = rng();
        let _ = Bucket::draw(0.0, &mut r);
    }
}
