//! The per-AP interference-management component (Fig 3's white block).
//!
//! [`InterferenceManager`] runs once per 1 s epoch (§4.3) and composes
//! the pieces:
//!
//! 1. share calculation from PRACH counts ([`crate::share`]);
//! 2. grow/shrink of the occupied set plus bucket-driven hopping
//!    ([`crate::hopping`]);
//! 3. channel re-use packing ([`crate::reuse`]);
//! 4. emission of the scheduler mask through the standard interface
//!    (`Cell::set_allowed_mask` on the LTE side).
//!
//! The manager is deliberately decoupled from the radio: the engine feeds
//! it an [`EpochInput`] of sensing results (already passed through the
//! imperfect-sensing model where applicable) and reads back an
//! [`EpochDecision`]. That keeps the algorithm testable in isolation and
//! reusable by both the system simulator and the theory harness.

use crate::hopping::{ClientObservation, Hop, Hopper, SubchannelFeedback};
use crate::reuse::{packing_moves, PackingMove};
use crate::share::fair_share;
use cellfi_obs::trace::{Event, Tracer};
use cellfi_types::time::Instant;
use cellfi_types::{SubchannelId, UeId};

/// Configuration of the interference manager.
#[derive(Debug, Clone, Copy)]
pub struct ManagerConfig {
    /// Exponential bucket mean (paper: λ = 10).
    pub lambda: f64,
    /// Enable the channel re-use packing heuristic.
    pub enable_reuse: bool,
    /// Contiguous free epochs required before packing moves (the "certain
    /// contiguous period of time" of §5.3).
    pub reuse_free_epochs: u32,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig {
            lambda: crate::bucket::DEFAULT_LAMBDA,
            enable_reuse: true,
            reuse_free_epochs: 3,
        }
    }
}

/// Per-client sensing results for one epoch, all vectors indexed by
/// subchannel.
#[derive(Debug, Clone)]
pub struct ClientEpochStats {
    /// The client.
    pub ue: UeId,
    /// Fraction of the epoch the client was scheduled on each subchannel.
    pub frac_scheduled: Vec<f64>,
    /// Interference-detector verdict per subchannel (after the imperfect-
    /// sensing model).
    pub interfered: Vec<bool>,
    /// Throughput achievable per subchannel as estimated from the latest
    /// CQI report (bits per epoch).
    pub est_throughput: Vec<f64>,
    /// Consecutive epochs the client has observed each subchannel as free
    /// (input to the re-use packing heuristic).
    pub free_streak: Vec<u32>,
}

/// Sensing input to one epoch.
#[derive(Debug, Clone)]
pub struct EpochInput {
    /// `N_i`: the AP's own active (backlogged) clients.
    pub own_active: u32,
    /// `NP_i`: all active clients heard via the PRACH detector, including
    /// the AP's own.
    pub heard_active: u32,
    /// Per-client sensing detail.
    pub clients: Vec<ClientEpochStats>,
}

/// What the manager decided this epoch.
#[derive(Debug, Clone)]
pub struct EpochDecision {
    /// The computed share `S_i`.
    pub share: u32,
    /// Scheduler mask (true = subchannel usable).
    pub mask: Vec<bool>,
    /// Hops taken by the bucket mechanism.
    pub hops: Vec<Hop>,
    /// Moves taken by the re-use packing heuristic.
    pub packing: Vec<PackingMove>,
}

/// The interference-management component of one CellFi access point.
#[derive(Debug, Clone)]
pub struct InterferenceManager {
    n_subchannels: u32,
    config: ManagerConfig,
    hopper: Hopper,
    epochs_run: u64,
}

impl InterferenceManager {
    /// Manager over `n_subchannels` (13 for the paper's 5 MHz channel),
    /// seeded deterministically.
    pub fn new(n_subchannels: u32, config: ManagerConfig, seed: u64) -> InterferenceManager {
        InterferenceManager {
            n_subchannels,
            hopper: Hopper::new(n_subchannels, config.lambda, seed),
            config,
            epochs_run: 0,
        }
    }

    /// Current scheduler mask.
    pub fn mask(&self) -> Vec<bool> {
        self.hopper.mask()
    }

    /// Occupied subchannels.
    pub fn owned(&self) -> Vec<SubchannelId> {
        self.hopper.owned()
    }

    /// Total hops taken since creation (convergence diagnostics).
    pub fn total_hops(&self) -> u64 {
        self.hopper.total_hops
    }

    /// Epochs processed.
    pub fn epochs_run(&self) -> u64 {
        self.epochs_run
    }

    /// Run one 1 s epoch.
    pub fn epoch(&mut self, input: &EpochInput) -> EpochDecision {
        self.epoch_traced(input, Instant::ZERO, 0, &mut Tracer::disabled())
    }

    /// Run one 1 s epoch, emitting share/hop/packing events into
    /// `tracer` stamped with simulation time `now` and this AP's `cell`
    /// index. [`InterferenceManager::epoch`] is this with a disabled
    /// tracer (which allocates nothing).
    pub fn epoch_traced(
        &mut self,
        input: &EpochInput,
        now: Instant,
        cell: u32,
        tracer: &mut Tracer,
    ) -> EpochDecision {
        self.epochs_run += 1;
        // An idle cell transmits nothing, so it interferes with nobody;
        // it *retains* its reservation rather than releasing it, so a
        // flow arriving mid-epoch starts at full share instead of dead
        // air. Neighbours stop counting its (inactive) clients within a
        // second (§5.1's PRACH expiry), grow their own shares, and their
        // re-use packing stacks onto the quiet subchannels — the system
        // self-corrects through the standard hopping path when the cell
        // wakes up again.
        if input.own_active == 0 {
            return EpochDecision {
                share: self.hopper.owned_count(),
                mask: self.hopper.mask(),
                hops: Vec::new(),
                packing: Vec::new(),
            };
        }
        let share = fair_share(self.n_subchannels, input.own_active, input.heard_active);
        tracer.emit(
            now,
            Event::Share {
                cell,
                own_active: input.own_active,
                heard_active: input.heard_active,
                share,
            },
        );

        // Utility of a candidate subchannel: Σ over clients of the
        // throughput achievable there (per their CQI), weighted by how
        // much service each client has been receiving (its total
        // scheduled fraction) — the §5.3 definition generalized over all
        // clients, since hops and growth serve the whole cell.
        let clients = input.clients.clone();
        let utility = move |s: SubchannelId| -> f64 {
            clients
                .iter()
                .map(|c| {
                    let weight: f64 = c.frac_scheduled.iter().sum();
                    let tput = c.est_throughput.get(s.index()).copied().unwrap_or(0.0);
                    tput * weight.max(0.05) // floor keeps idle cells able to rank
                })
                .sum()
        };

        // 1. Track the computed share.
        self.hopper.adjust_to_share(share, &utility);

        // 2. Bucket updates + hopping from per-subchannel feedback.
        let feedback: Vec<SubchannelFeedback> = self
            .hopper
            .owned()
            .into_iter()
            .map(|s| SubchannelFeedback {
                subchannel: s,
                clients: input
                    .clients
                    .iter()
                    .filter(|c| c.frac_scheduled.get(s.index()).copied().unwrap_or(0.0) > 0.0)
                    .map(|c| ClientObservation {
                        frac_scheduled: c.frac_scheduled[s.index()],
                        bad: c.interfered.get(s.index()).copied().unwrap_or(false),
                    })
                    .collect(),
            })
            .collect();
        let hops = self.hopper.apply_feedback(&feedback, &utility);
        for h in &hops {
            tracer.emit(
                now,
                Event::Hop {
                    cell,
                    from: h.from.0,
                    to: h.to.0,
                    from_utility: h.from_utility,
                    to_utility: h.to_utility,
                },
            );
        }

        // 3. Channel re-use packing.
        let packing = if self.config.enable_reuse {
            let owned = self.hopper.owned();
            let input_clients = &input.clients;
            let min_free_streak = |k: SubchannelId, cand: SubchannelId| -> u32 {
                input_clients
                    .iter()
                    .filter(|c| c.frac_scheduled.get(k.index()).copied().unwrap_or(0.0) > 0.0)
                    .map(|c| c.free_streak.get(cand.index()).copied().unwrap_or(0))
                    .min()
                    .unwrap_or(0) // no recent users ⇒ no evidence ⇒ stay
            };
            let moves = packing_moves(
                &owned,
                self.n_subchannels,
                &min_free_streak,
                self.config.reuse_free_epochs,
            );
            for m in &moves {
                self.hopper.relocate(m.from, m.to);
                tracer.emit(
                    now,
                    Event::Pack {
                        cell,
                        from: m.from.0,
                        to: m.to.0,
                    },
                );
            }
            moves
        } else {
            Vec::new()
        };

        EpochDecision {
            share,
            mask: self.hopper.mask(),
            hops,
            packing,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(ue: u32, n: usize) -> ClientEpochStats {
        ClientEpochStats {
            ue: UeId::new(ue),
            frac_scheduled: vec![0.0; n],
            interfered: vec![false; n],
            est_throughput: vec![1000.0; n],
            free_streak: vec![0; n],
        }
    }

    fn manager() -> InterferenceManager {
        InterferenceManager::new(13, ManagerConfig::default(), 77)
    }

    #[test]
    fn lone_cell_claims_whole_channel() {
        let mut m = manager();
        let input = EpochInput {
            own_active: 6,
            heard_active: 6,
            clients: (0..6).map(|u| stats(u, 13)).collect(),
        };
        let d = m.epoch(&input);
        assert_eq!(d.share, 13);
        assert_eq!(d.mask.iter().filter(|&&b| b).count(), 13);
    }

    #[test]
    fn contended_cell_takes_fair_share() {
        let mut m = manager();
        let input = EpochInput {
            own_active: 6,
            heard_active: 12,
            clients: (0..6).map(|u| stats(u, 13)).collect(),
        };
        let d = m.epoch(&input);
        assert_eq!(d.share, 6);
        assert_eq!(d.mask.iter().filter(|&&b| b).count(), 6);
    }

    #[test]
    fn idle_cell_retains_reservation() {
        // An idle cell radiates no data, so holding the reservation costs
        // nothing; releasing it would add up to one epoch of dead air
        // when traffic returns.
        let mut m = manager();
        let busy = EpochInput {
            own_active: 4,
            heard_active: 4,
            clients: (0..4).map(|u| stats(u, 13)).collect(),
        };
        m.epoch(&busy);
        assert_eq!(m.owned().len(), 13);
        let idle = EpochInput {
            own_active: 0,
            heard_active: 3,
            clients: vec![],
        };
        let d = m.epoch(&idle);
        assert_eq!(d.share, 13, "reservation retained across idle epochs");
        assert_eq!(m.owned().len(), 13);
        // When traffic resumes in a now-busier neighbourhood, the share
        // shrinks to the recomputed fair value.
        let resumed = EpochInput {
            own_active: 2,
            heard_active: 13,
            clients: (0..2).map(|u| stats(u, 13)).collect(),
        };
        let d = m.epoch(&resumed);
        assert_eq!(d.share, 2);
        assert_eq!(m.owned().len(), 2);
    }

    #[test]
    fn interference_on_scheduled_subchannel_eventually_hops() {
        let mut m = InterferenceManager::new(
            13,
            ManagerConfig {
                enable_reuse: false,
                ..ManagerConfig::default()
            },
            3,
        );
        // One client, share 1 of 13; its subchannel is always interfered.
        let mut hop_seen = false;
        for _ in 0..200 {
            let owned = m.owned();
            let mut st = stats(0, 13);
            if let Some(&s) = owned.first() {
                st.frac_scheduled[s.index()] = 1.0;
                st.interfered[s.index()] = true;
            }
            let d = m.epoch(&EpochInput {
                own_active: 1,
                heard_active: 13,
                clients: vec![st],
            });
            if !d.hops.is_empty() {
                hop_seen = true;
                break;
            }
        }
        assert!(hop_seen, "persistent interference must trigger a hop");
    }

    #[test]
    fn clean_channel_is_stable_after_convergence() {
        let mut m = InterferenceManager::new(
            13,
            ManagerConfig {
                enable_reuse: false,
                ..ManagerConfig::default()
            },
            5,
        );
        let mut input = EpochInput {
            own_active: 3,
            heard_active: 6,
            clients: (0..3).map(|u| stats(u, 13)).collect(),
        };
        let first = m.epoch(&input);
        assert_eq!(first.share, 6);
        let owned_after = m.owned();
        // Serve clients on owned subchannels, all clean.
        for c in input.clients.iter_mut() {
            for &s in &owned_after {
                c.frac_scheduled[s.index()] = 1.0 / owned_after.len() as f64;
            }
        }
        for _ in 0..50 {
            let d = m.epoch(&input);
            assert!(d.hops.is_empty());
            assert!(d.packing.is_empty());
        }
        assert_eq!(m.owned(), owned_after);
        assert_eq!(m.total_hops(), 0);
    }

    #[test]
    fn reuse_packs_toward_low_indices() {
        let mut m = manager();
        // Single client cell with full free streaks everywhere: whatever
        // it owns should compact to the lowest indices.
        let mut st = stats(0, 13);
        st.free_streak = vec![10; 13];
        let input = EpochInput {
            own_active: 1,
            heard_active: 6,
            clients: vec![st.clone()],
        };
        let d1 = m.epoch(&input);
        assert_eq!(d1.share, 2);
        // Mark the client as scheduled on owned so packing has "recent
        // users" evidence.
        let mut st2 = st.clone();
        for &s in &m.owned() {
            st2.frac_scheduled[s.index()] = 0.5;
        }
        let input2 = EpochInput {
            own_active: 1,
            heard_active: 6,
            clients: vec![st2],
        };
        let _ = m.epoch(&input2);
        let owned = m.owned();
        assert_eq!(
            owned[0],
            SubchannelId::new(0),
            "packed to lowest: {owned:?}"
        );
    }

    #[test]
    fn reuse_disabled_never_packs() {
        let mut m = InterferenceManager::new(
            13,
            ManagerConfig {
                enable_reuse: false,
                ..ManagerConfig::default()
            },
            11,
        );
        let mut st = stats(0, 13);
        st.free_streak = vec![100; 13];
        for &s in &[3u32, 9] {
            st.frac_scheduled[s as usize] = 0.5;
        }
        let d = m.epoch(&EpochInput {
            own_active: 1,
            heard_active: 2,
            clients: vec![st],
        });
        assert!(d.packing.is_empty());
    }

    #[test]
    fn mask_length_matches_subchannel_count() {
        let mut m = manager();
        let d = m.epoch(&EpochInput {
            own_active: 1,
            heard_active: 1,
            clients: vec![stats(0, 13)],
        });
        assert_eq!(d.mask.len(), 13);
    }

    #[test]
    fn epochs_are_counted() {
        let mut m = manager();
        let input = EpochInput {
            own_active: 1,
            heard_active: 1,
            clients: vec![stats(0, 13)],
        };
        for _ in 0..5 {
            m.epoch(&input);
        }
        assert_eq!(m.epochs_run(), 5);
    }

    #[test]
    fn two_managers_converge_to_disjoint_shares() {
        // The core co-existence property on a clean 2-AP topology: both
        // cells hear all 12 clients, take 6 subchannels each, and — with
        // mutual interference feedback — end up disjoint.
        let cfg = ManagerConfig {
            enable_reuse: false,
            ..ManagerConfig::default()
        };
        let mut a = InterferenceManager::new(13, cfg, 100);
        let mut b = InterferenceManager::new(13, cfg, 200);
        let mut last_overlap = 13;
        for _ in 0..300 {
            let owned_a = a.owned();
            let owned_b = b.owned();
            let overlap: Vec<SubchannelId> = owned_a
                .iter()
                .copied()
                .filter(|s| owned_b.contains(s))
                .collect();
            last_overlap = overlap.len();
            let build = |owned: &[SubchannelId], n_clients: u32| -> EpochInput {
                let mut clients = Vec::new();
                for u in 0..n_clients {
                    let mut st = stats(u, 13);
                    for &s in owned {
                        st.frac_scheduled[s.index()] = 1.0 / owned.len().max(1) as f64;
                        st.interfered[s.index()] = overlap.contains(&s);
                    }
                    clients.push(st);
                }
                EpochInput {
                    own_active: n_clients,
                    heard_active: 12,
                    clients,
                }
            };
            let ia = build(&owned_a, 6);
            let ib = build(&owned_b, 6);
            a.epoch(&ia);
            b.epoch(&ib);
        }
        assert_eq!(last_overlap, 0, "managers still colliding after 300 epochs");
        assert_eq!(a.owned().len(), 6);
        assert_eq!(b.owned().len(), 6);
    }
}
