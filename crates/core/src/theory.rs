//! The §5.5 analytical model and Theorem 1.
//!
//! The paper abstracts hopping as a process on the conflict graph: each
//! node `v_i` has integer demand `d_i`; nodes hop onto subchannels not
//! occupied by neighbours; a freshly chosen subchannel is unusable
//! (faded) with independent probability `p`. Under the **demand
//! assumption** — there exists `γ ∈ (1/M, 1]` with
//! `Σ_{ℓ∈N(v_i)} d_ℓ ≤ (1−γ)·M` for every node — Theorem 1 states the
//! process converges with probability 1, in
//! `O(M·log n / ((1−p)·γ))` rounds in expectation and w.h.p.
//!
//! This module provides:
//!
//! * [`demand_gamma`] — the largest γ the instance satisfies (or `None`);
//! * [`convergence_bound_rounds`] — the theorem's bound (up to the
//!   constant);
//! * [`HoppingProcess`] — a faithful simulator of the abstract process,
//!   used by tests, `exp -- theorem1` and the convergence bench to check
//!   the bound empirically.

use crate::graph::ConflictGraph;
use cellfi_types::ApId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use std::collections::BTreeSet;

/// The largest `γ` such that every *open* neighbourhood's demand satisfies
/// `Σ_{ℓ∈N(v_i)} d_ℓ ≤ (1−γ)·M`, as in the paper's statement. Returns
/// `None` when some neighbourhood violates even `γ = 1/M` (no slack), in
/// which case the theorem gives no guarantee.
pub fn demand_gamma(graph: &ConflictGraph, demands: &[u32], m: u32) -> Option<f64> {
    assert_eq!(demands.len(), graph.len());
    assert!(m > 0);
    let worst = (0..graph.len() as u32)
        .map(|v| {
            graph
                .neighbors(ApId::new(v))
                .map(|u| demands[u.index()])
                .sum::<u32>()
        })
        .max()
        .unwrap_or(0);
    let gamma = 1.0 - f64::from(worst) / f64::from(m);
    (gamma > 1.0 / f64::from(m)).then_some(gamma)
}

/// Theorem 1's convergence bound in rounds: `M·log n / ((1−p)·γ)`.
/// (The theorem hides a constant; empirical runs land well under this.)
pub fn convergence_bound_rounds(m: u32, n: usize, p_fading: f64, gamma: f64) -> f64 {
    assert!((0.0..1.0).contains(&p_fading), "p must be in [0,1)");
    assert!(gamma > 0.0 && gamma <= 1.0);
    let n = n.max(2) as f64;
    f64::from(m) * n.ln() / ((1.0 - p_fading) * gamma)
}

/// The abstract synchronous hopping process of §5.5.
///
/// ```
/// use cellfi_core::theory::HoppingProcess;
/// use cellfi_core::ConflictGraph;
/// // Two conflicting nodes wanting 4 subchannels each of 13: converges
/// // fast and conflict-free.
/// let g = ConflictGraph::from_edges(2, &[(0, 1)]);
/// let mut p = HoppingProcess::new(g, vec![4, 4], 13, 0.0, 7);
/// let rounds = p.run(1_000).expect("slack instance converges");
/// assert!(rounds <= 20);
/// assert!(p.conflict_free());
/// ```
#[derive(Debug, Clone)]
pub struct HoppingProcess {
    graph: ConflictGraph,
    demands: Vec<u32>,
    m: u32,
    p_fading: f64,
    /// `holdings[v]` = subchannels currently held by node `v`.
    holdings: Vec<BTreeSet<u32>>,
    rng: StdRng,
    rounds: u32,
}

impl HoppingProcess {
    /// New process instance.
    pub fn new(
        graph: ConflictGraph,
        demands: Vec<u32>,
        m: u32,
        p_fading: f64,
        seed: u64,
    ) -> HoppingProcess {
        assert_eq!(demands.len(), graph.len());
        assert!((0.0..1.0).contains(&p_fading));
        let n = graph.len();
        HoppingProcess {
            graph,
            demands,
            m,
            p_fading,
            holdings: vec![BTreeSet::new(); n],
            rng: StdRng::seed_from_u64(seed),
            rounds: 0,
        }
    }

    /// Whether every node has satisfied its demand.
    pub fn converged(&self) -> bool {
        self.holdings
            .iter()
            .zip(&self.demands)
            .all(|(h, &d)| h.len() as u32 >= d)
    }

    /// Rounds executed so far.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Current holdings (for invariant checks).
    pub fn holdings(&self) -> &[BTreeSet<u32>] {
        &self.holdings
    }

    /// Verify the standing invariant: no two neighbours hold the same
    /// subchannel.
    pub fn conflict_free(&self) -> bool {
        let raw: Vec<Vec<u32>> = self
            .holdings
            .iter()
            .map(|h| h.iter().copied().collect())
            .collect();
        self.graph.is_conflict_free(&raw)
    }

    /// Run one synchronous round: every unsatisfied node makes one hopping
    /// attempt on a uniformly random subchannel it senses free (not held
    /// by itself or any neighbour). The attempt fails on a *clash* (a
    /// neighbour picked the same subchannel this round) or on *fading*
    /// (probability `p`, independent).
    pub fn step(&mut self) {
        self.rounds += 1;
        let n = self.graph.len();
        // Each unsatisfied node picks its attempt based on the state at
        // the start of the round (synchronous model).
        let mut picks: Vec<Option<u32>> = vec![None; n];
        for (v, pick) in picks.iter_mut().enumerate() {
            if self.holdings[v].len() as u32 >= self.demands[v] {
                continue;
            }
            let mut free: Vec<u32> = (0..self.m)
                .filter(|s| {
                    !self.holdings[v].contains(s)
                        && !self
                            .graph
                            .neighbors(ApId::new(v as u32))
                            .any(|u| self.holdings[u.index()].contains(s))
                })
                .collect();
            if free.is_empty() {
                continue;
            }
            free.shuffle(&mut self.rng);
            *pick = Some(free[0]);
        }
        // Resolve clashes and fading.
        for v in 0..n {
            let Some(s) = picks[v] else { continue };
            let clash = self
                .graph
                .neighbors(ApId::new(v as u32))
                .any(|u| picks[u.index()] == Some(s));
            if clash {
                continue;
            }
            if self.rng.gen::<f64>() < self.p_fading {
                continue; // faded: the subchannel turned out unusable
            }
            self.holdings[v].insert(s);
        }
    }

    /// Run until convergence or `max_rounds`; returns the round count on
    /// convergence, `None` on timeout.
    pub fn run(&mut self, max_rounds: u32) -> Option<u32> {
        for _ in 0..max_rounds {
            if self.converged() {
                return Some(self.rounds);
            }
            self.step();
        }
        self.converged().then_some(self.rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A ring of n nodes (cycle graph).
    fn ring(n: u32) -> ConflictGraph {
        let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        ConflictGraph::from_edges(n as usize, &edges)
    }

    #[test]
    fn gamma_for_slack_instance() {
        // Ring of 6, demand 3 each, M = 13: open-neighbourhood demand 6,
        // γ = 1 − 6/13 ≈ 0.538.
        let g = ring(6);
        let gamma = demand_gamma(&g, &[3; 6], 13).unwrap();
        assert!((gamma - (1.0 - 6.0 / 13.0)).abs() < 1e-12);
    }

    #[test]
    fn gamma_none_when_overloaded() {
        let g = ring(4);
        assert!(demand_gamma(&g, &[7, 7, 7, 7], 13).is_none());
    }

    #[test]
    fn bound_formula() {
        let b = convergence_bound_rounds(13, 10, 0.0, 0.5);
        assert!((b - 13.0 * (10f64).ln() / 0.5).abs() < 1e-9);
        // Fading slows convergence by 1/(1−p).
        let bf = convergence_bound_rounds(13, 10, 0.5, 0.5);
        assert!((bf / b - 2.0).abs() < 1e-9);
    }

    #[test]
    fn process_converges_on_slack_ring() {
        let g = ring(8);
        let demands = vec![3u32; 8];
        let gamma = demand_gamma(&g, &demands, 13).unwrap();
        let bound = convergence_bound_rounds(13, 8, 0.0, gamma);
        let mut p = HoppingProcess::new(g, demands, 13, 0.0, 1);
        let rounds = p.run(5_000).expect("must converge");
        assert!(p.conflict_free());
        // Theorem hides a constant; allow 3× the bound.
        assert!(
            f64::from(rounds) <= 3.0 * bound,
            "rounds {rounds} vs bound {bound}"
        );
    }

    #[test]
    fn holdings_never_conflict_during_run() {
        let g = ring(6);
        let mut p = HoppingProcess::new(g, vec![4; 6], 13, 0.1, 3);
        for _ in 0..200 {
            p.step();
            assert!(p.conflict_free(), "conflict at round {}", p.rounds());
        }
    }

    #[test]
    fn fading_slows_but_does_not_stop_convergence() {
        let g = ring(8);
        let demands = vec![3u32; 8];
        let mut clean_total = 0u32;
        let mut faded_total = 0u32;
        for seed in 0..10 {
            let mut clean = HoppingProcess::new(g.clone(), demands.clone(), 13, 0.0, seed);
            let mut faded = HoppingProcess::new(g.clone(), demands.clone(), 13, 0.6, seed + 100);
            clean_total += clean.run(10_000).expect("clean converges");
            faded_total += faded.run(10_000).expect("faded converges");
        }
        assert!(
            faded_total > clean_total,
            "fading should slow convergence: {faded_total} vs {clean_total}"
        );
    }

    #[test]
    fn converged_instance_stops_hopping() {
        let g = ConflictGraph::new(2);
        let mut p = HoppingProcess::new(g, vec![1, 1], 4, 0.0, 7);
        let r = p.run(100).unwrap();
        let holdings_before: Vec<_> = p.holdings().to_vec();
        for _ in 0..10 {
            p.step();
        }
        assert_eq!(
            p.holdings(),
            &holdings_before[..],
            "stable after convergence"
        );
        assert!(r <= 5);
    }

    #[test]
    fn convergence_scales_logarithmically_in_n() {
        // Median rounds over seeds for n and n² nodes: the ratio should be
        // far below linear (n), consistent with the log n bound.
        let run_median = |n: u32| -> f64 {
            let mut results: Vec<u32> = (0..9)
                .map(|seed| {
                    let g = ring(n);
                    let mut p = HoppingProcess::new(g, vec![3; n as usize], 13, 0.0, seed);
                    p.run(20_000).expect("converges")
                })
                .collect();
            results.sort_unstable();
            f64::from(results[4])
        };
        let small = run_median(8);
        let large = run_median(64);
        assert!(
            large / small < 4.0,
            "8→64 nodes grew rounds {small}→{large}; too fast for log n"
        );
    }

    #[test]
    fn zero_demand_node_converges_immediately() {
        let g = ConflictGraph::new(1);
        let mut p = HoppingProcess::new(g, vec![0], 13, 0.0, 1);
        assert!(p.converged());
        assert_eq!(p.run(10), Some(0));
    }

    #[test]
    #[should_panic(expected = "p must be in [0,1)")]
    fn bad_fading_probability_panics() {
        let _ = convergence_bound_rounds(13, 10, 1.0, 0.5);
    }
}
