//! The centralized oracle allocator (§6.3.4 comparison baseline).
//!
//! The paper evaluates CellFi "against a centralized, oracle-based
//! state-of-the-art OFDMA resource isolation scheme \[FERMI\]". FERMI
//! gathers the full interference graph at a central controller and solves
//! a fair subchannel-isolation problem. Our oracle does the same with
//! complete, error-free knowledge:
//!
//! 1. **Fair share** — each AP gets `d_i · M / D_max(i)` subchannels,
//!    where `D_max(i)` is the largest total demand over any closed
//!    neighbourhood containing `i` (the binding clique constraint).
//! 2. **Assignment** — greedy weighted colouring in order of descending
//!    neighbourhood load, each AP taking the lowest-index subchannels not
//!    used by its already-coloured neighbours (maximizing spatial
//!    re-use, which the centralized view gets for free).
//!
//! This is an upper bound for CellFi: no sensing error, no information
//! asymmetry, no convergence transient.

use crate::graph::ConflictGraph;
use cellfi_types::{ApId, SubchannelId};
use std::collections::BTreeSet;

/// The centralized allocator.
#[derive(Debug, Clone, Copy, Default)]
pub struct OracleAllocator;

impl OracleAllocator {
    /// Allocate `m` subchannels among the APs of `graph` with client
    /// demands `demands` (active clients per AP). Returns one subchannel
    /// set per AP; adjacent APs receive disjoint sets.
    pub fn allocate(
        &self,
        graph: &ConflictGraph,
        demands: &[u32],
        m: u32,
    ) -> Vec<Vec<SubchannelId>> {
        assert_eq!(demands.len(), graph.len(), "one demand per AP");
        let n = graph.len();
        if n == 0 {
            return Vec::new();
        }

        // 1. Fair share under the binding neighbourhood constraint.
        let shares: Vec<u32> = (0..n as u32)
            .map(|i| {
                let v = ApId::new(i);
                if demands[v.index()] == 0 {
                    return 0;
                }
                // The tightest clique-ish constraint this AP participates
                // in: the max closed-neighbourhood demand over v and its
                // neighbours.
                let binding = std::iter::once(v)
                    .chain(graph.neighbors(v))
                    .map(|u| graph.closed_neighborhood_weight(u, demands))
                    .max()
                    .unwrap_or(demands[v.index()]);
                let share = (f64::from(demands[v.index()]) * f64::from(m) / f64::from(binding))
                    .floor() as u32;
                share.clamp(1, m)
            })
            .collect();

        // 2. Greedy colouring, most-constrained APs first.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| {
            std::cmp::Reverse((
                graph.closed_neighborhood_weight(ApId::new(i as u32), demands),
                demands[i],
            ))
        });

        // Two passes: first one subchannel for every active AP (so that
        // the min-1 share clamp cannot starve a late AP in an overloaded
        // neighbourhood), then top-up to the computed shares.
        let mut assignment: Vec<Vec<SubchannelId>> = vec![Vec::new(); n];
        for pass in 0..2 {
            for &i in &order {
                if shares[i] == 0 {
                    continue;
                }
                let target = if pass == 0 { 1 } else { shares[i] };
                let v = ApId::new(i as u32);
                let blocked: BTreeSet<u32> = graph
                    .neighbors(v)
                    .flat_map(|u| assignment[u.index()].iter().map(|s| s.0))
                    .collect();
                let mut mine = assignment[i].clone();
                for s in 0..m {
                    if mine.len() as u32 >= target {
                        break;
                    }
                    let sc = SubchannelId::new(s);
                    if !blocked.contains(&s) && !mine.contains(&sc) {
                        mine.push(sc);
                    }
                }
                mine.sort_unstable();
                assignment[i] = mine;
            }
        }
        assignment
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lone_ap_gets_everything() {
        let g = ConflictGraph::new(1);
        let a = OracleAllocator.allocate(&g, &[4], 13);
        assert_eq!(a[0].len(), 13);
    }

    #[test]
    fn idle_ap_gets_nothing() {
        let g = ConflictGraph::new(2);
        let a = OracleAllocator.allocate(&g, &[0, 3], 13);
        assert!(a[0].is_empty());
        assert_eq!(a[1].len(), 13);
    }

    #[test]
    fn two_conflicting_aps_split_fairly_and_disjointly() {
        let g = ConflictGraph::from_edges(2, &[(0, 1)]);
        let a = OracleAllocator.allocate(&g, &[6, 6], 13);
        assert_eq!(a[0].len(), 6);
        assert_eq!(a[1].len(), 6);
        let raw: Vec<Vec<u32>> = a.iter().map(|v| v.iter().map(|s| s.0).collect()).collect();
        assert!(g.is_conflict_free(&raw));
    }

    #[test]
    fn unequal_demands_split_proportionally() {
        let g = ConflictGraph::from_edges(2, &[(0, 1)]);
        let a = OracleAllocator.allocate(&g, &[9, 3], 12);
        assert_eq!(a[0].len(), 9);
        assert_eq!(a[1].len(), 3);
    }

    #[test]
    fn independent_aps_reuse_spectrum() {
        // 0—1, 2 isolated: 2 shares nothing with anyone and re-uses all.
        let g = ConflictGraph::from_edges(3, &[(0, 1)]);
        let a = OracleAllocator.allocate(&g, &[4, 4, 4], 13);
        assert_eq!(a[2].len(), 13, "isolated AP re-uses the full channel");
    }

    #[test]
    fn path_graph_exploits_non_adjacency() {
        // 0—1—2: ends may share; the centre must dodge both. With equal
        // demands on M=12, each neighbourhood holds ≤ 8 of demand... the
        // binding constraint for all is the centre's closed neighbourhood
        // (12), so shares are 4 each, and 0/2 can (and do) overlap.
        let g = ConflictGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let a = OracleAllocator.allocate(&g, &[4, 4, 4], 12);
        assert_eq!(a.iter().map(|v| v.len()).collect::<Vec<_>>(), vec![4, 4, 4]);
        assert_eq!(a[0], a[2], "non-adjacent ends re-use the same block");
        let raw: Vec<Vec<u32>> = a.iter().map(|v| v.iter().map(|s| s.0).collect()).collect();
        assert!(g.is_conflict_free(&raw));
    }

    #[test]
    fn fig5b_oracle_beats_conservative_share() {
        // Fig 5(b): AP 1 (2 clients) — AP 2 (1 client + 3 more clients of
        // its own neighbourhood), M = 4. The oracle knows AP 2 only needs
        // 1 subchannel and can hand AP 1 three — more than the fair-share
        // 2 CellFi's conservative estimate reserves.
        let g = ConflictGraph::from_edges(2, &[(0, 1)]);
        let a = OracleAllocator.allocate(&g, &[3, 1], 4);
        assert_eq!(a[0].len(), 3);
        assert_eq!(a[1].len(), 1);
    }

    proptest! {
        #[test]
        fn oracle_assignments_always_conflict_free(
            n in 2usize..10,
            edge_bits in proptest::collection::vec(any::<bool>(), 45),
            demands in proptest::collection::vec(0u32..8, 10),
            m in 4u32..26,
        ) {
            let mut edges = Vec::new();
            let mut k = 0;
            for i in 0..n as u32 {
                for j in (i + 1)..n as u32 {
                    if edge_bits[k % edge_bits.len()] {
                        edges.push((i, j));
                    }
                    k += 1;
                }
            }
            let g = ConflictGraph::from_edges(n, &edges);
            let d = &demands[..n];
            let a = OracleAllocator.allocate(&g, d, m);
            let raw: Vec<Vec<u32>> =
                a.iter().map(|v| v.iter().map(|s| s.0).collect()).collect();
            prop_assert!(g.is_conflict_free(&raw));
            // Every active AP got at least one subchannel (or its whole
            // neighbourhood is so overloaded the greedy ran out, which the
            // share floor should prevent for m ≥ n).
            if m >= n as u32 {
                for i in 0..n {
                    if d[i] > 0 {
                        prop_assert!(!a[i].is_empty(), "AP {i} starved: {a:?}");
                    }
                }
            }
        }
    }
}
