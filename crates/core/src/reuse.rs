//! Channel re-use packing heuristic (§5.3 "Channel re-use").
//!
//! "Clients very close to their respective access points are not likely
//! to interfere with anyone else; hence, it would be beneficial to
//! schedule them in the same subchannels across different networks ...
//! The access point will give up subchannel i and move to a subchannel of
//! lower index if this subchannel is detected as free for a certain
//! contiguous period of time, by all of the users that were scheduled on
//! the subchannel i in the recent past."
//!
//! Low-interference clients thus drift to low-index subchannels across
//! *all* networks, spontaneously stacking spectrum re-use without any
//! coordination — worth "upto 2x gain in throughput for exposed clients".

use cellfi_types::SubchannelId;
use std::collections::BTreeSet;

/// A packing move: relocate an owned subchannel to a lower index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackingMove {
    /// Owned subchannel being vacated.
    pub from: SubchannelId,
    /// Lower-index destination.
    pub to: SubchannelId,
}

/// Compute the packing moves for one epoch.
///
/// * `owned` — the AP's occupied subchannels.
/// * `n_subchannels` — total subchannel count.
/// * `min_free_streak` — `min_free_streak(k, k')`: the minimum, over all
///   clients recently scheduled on owned subchannel `k`, of the number of
///   consecutive epochs each has observed candidate `k'` as free.
/// * `required_streak` — the contiguous-free threshold.
///
/// Each owned subchannel moves to the lowest eligible free index below
/// it; destinations are consumed so two owned subchannels never collide.
/// Moves are computed against the pre-move ownership (a single packing
/// step per epoch, which keeps the procedure independent from hopping as
/// §5.5 notes).
pub fn packing_moves(
    owned: &[SubchannelId],
    n_subchannels: u32,
    min_free_streak: &dyn Fn(SubchannelId, SubchannelId) -> u32,
    required_streak: u32,
) -> Vec<PackingMove> {
    let owned_set: BTreeSet<SubchannelId> = owned.iter().copied().collect();
    let mut taken = owned_set.clone();
    let mut moves = Vec::new();
    // Consider owned subchannels from lowest to highest so the lowest
    // indices compact first.
    for &k in owned_set.iter() {
        let mut dest = None;
        for idx in 0..k.0.min(n_subchannels) {
            let candidate = SubchannelId::new(idx);
            if taken.contains(&candidate) {
                continue;
            }
            if min_free_streak(k, candidate) >= required_streak {
                dest = Some(candidate);
                break;
            }
        }
        if let Some(to) = dest {
            // `k` stays in `taken`: the slot vacated this epoch is not a
            // legal destination until next epoch (single step per epoch,
            // keeping packing loosely coupled from hopping as §5.5 notes).
            taken.insert(to);
            moves.push(PackingMove { from: k, to });
        }
    }
    moves
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sc(i: u32) -> SubchannelId {
        SubchannelId::new(i)
    }

    #[test]
    fn moves_to_lowest_free_index() {
        let owned = [sc(8)];
        let moves = packing_moves(&owned, 13, &|_, _| 10, 3);
        assert_eq!(
            moves,
            vec![PackingMove {
                from: sc(8),
                to: sc(0)
            }]
        );
    }

    #[test]
    fn respects_streak_threshold() {
        let owned = [sc(8)];
        // Everything free for only 2 epochs: below the threshold of 3.
        let moves = packing_moves(&owned, 13, &|_, _| 2, 3);
        assert!(moves.is_empty());
    }

    #[test]
    fn per_candidate_streaks_checked() {
        let owned = [sc(8)];
        // Subchannels 0–3 busy (streak 0), 4 free long enough.
        let streak = |_: SubchannelId, cand: SubchannelId| if cand.0 >= 4 { 5 } else { 0 };
        let moves = packing_moves(&owned, 13, &streak, 3);
        assert_eq!(
            moves,
            vec![PackingMove {
                from: sc(8),
                to: sc(4)
            }]
        );
    }

    #[test]
    fn never_moves_upwards() {
        let owned = [sc(0)];
        let moves = packing_moves(&owned, 13, &|_, _| 100, 1);
        assert!(moves.is_empty(), "subchannel 0 has nowhere lower to go");
    }

    #[test]
    fn destinations_not_shared() {
        let owned = [sc(5), sc(9)];
        let moves = packing_moves(&owned, 13, &|_, _| 10, 3);
        assert_eq!(moves.len(), 2);
        assert_eq!(
            moves[0],
            PackingMove {
                from: sc(5),
                to: sc(0)
            }
        );
        assert_eq!(
            moves[1],
            PackingMove {
                from: sc(9),
                to: sc(1)
            }
        );
    }

    #[test]
    fn own_subchannels_not_destinations() {
        // Owned 0,1,2 and 8: the only legal destination below 8 is 3.
        let owned = [sc(0), sc(1), sc(2), sc(8)];
        let moves = packing_moves(&owned, 13, &|_, _| 10, 3);
        assert_eq!(
            moves,
            vec![PackingMove {
                from: sc(8),
                to: sc(3)
            }]
        );
    }

    #[test]
    fn vacated_slot_not_reused_same_epoch() {
        // Owned 1 and 2. Subchannel 1 moves to 0; subchannel 2 must not
        // jump into the just-vacated 1 in the same epoch (single step per
        // epoch keeps packing and hopping loosely coupled).
        let owned = [sc(1), sc(2)];
        let moves = packing_moves(&owned, 13, &|_, _| 10, 3);
        assert_eq!(
            moves,
            vec![PackingMove {
                from: sc(1),
                to: sc(0)
            }]
        );
    }

    #[test]
    fn empty_owned_no_moves() {
        assert!(packing_moves(&[], 13, &|_, _| 10, 3).is_empty());
    }

    #[test]
    fn exposed_client_scenario_converges_to_shared_low_indices() {
        // Two APs with near clients, no mutual interference: simulate both
        // packing independently; they should end up stacked on the same
        // low indices — the cross-network re-use the paper wants.
        let mut ap1 = vec![sc(7)];
        let mut ap2 = vec![sc(11)];
        for _ in 0..4 {
            let m1 = packing_moves(&ap1, 13, &|_, _| 10, 3);
            for m in m1 {
                ap1.retain(|&s| s != m.from);
                ap1.push(m.to);
            }
            let m2 = packing_moves(&ap2, 13, &|_, _| 10, 3);
            for m in m2 {
                ap2.retain(|&s| s != m.from);
                ap2.push(m.to);
            }
        }
        assert_eq!(ap1, vec![sc(0)]);
        assert_eq!(ap2, vec![sc(0)], "both networks re-use subchannel 0");
    }
}
