//! Distributed share calculation (§5.2).
//!
//! "Let S be the total number of subchannels available, NP_i the number
//! of estimated active clients and N_i the number of active clients
//! associated with AP i. ... for each active client, the AP i reserves
//! S/NP_i distinct shares, giving it a total share of
//! S_i = N_i · S / NP_i."
//!
//! NP_i counts every active client the AP can hear — its own plus the
//! overheard ones — so the per-client share S/NP_i is a *conservative*
//! estimate of a fair split of the neighbourhood ("this approach can
//! occasionally underestimate the target shares ... but it is still more
//! efficient than Wi-Fi or LTE").

/// Compute the subchannel share `S_i` of an access point.
///
/// * `total_subchannels` — `S`, the channel's subchannel count (13 on
///   5 MHz).
/// * `own_active` — `N_i`, the AP's own active (backlogged) clients.
/// * `heard_active` — `NP_i`, all active clients heard via PRACH,
///   including the AP's own.
///
/// Floors to an integer share; an AP with at least one active client
/// always keeps at least one subchannel (it could not serve anyone
/// otherwise), and the share never exceeds `S`.
///
/// ```
/// use cellfi_core::share::fair_share;
/// // Two equal cells sharing a 5 MHz channel: six subchannels each.
/// assert_eq!(fair_share(13, 6, 12), 6);
/// // Alone in the neighbourhood: take everything.
/// assert_eq!(fair_share(13, 4, 4), 13);
/// // Tiny minority in a crowded neighbourhood: never below one.
/// assert_eq!(fair_share(13, 1, 100), 1);
/// ```
pub fn fair_share(total_subchannels: u32, own_active: u32, heard_active: u32) -> u32 {
    assert!(
        heard_active >= own_active,
        "heard count {heard_active} cannot be below own count {own_active}"
    );
    if own_active == 0 {
        return 0;
    }
    let s = f64::from(total_subchannels);
    let share = (f64::from(own_active) * s / f64::from(heard_active)).floor() as u32;
    share.clamp(1, total_subchannels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lone_ap_takes_everything() {
        assert_eq!(fair_share(13, 6, 6), 13);
    }

    #[test]
    fn idle_ap_takes_nothing() {
        assert_eq!(fair_share(13, 0, 10), 0);
        assert_eq!(fair_share(13, 0, 0), 0);
    }

    #[test]
    fn equal_split_between_two_equal_cells() {
        // Two APs with 6 clients each: each hears 12, owns 6 → 6 of 13.
        assert_eq!(fair_share(13, 6, 12), 6);
    }

    #[test]
    fn proportional_to_client_count() {
        // AP with 9 of 12 heard clients gets 3× the share of one with 3.
        let big = fair_share(13, 9, 12);
        let small = fair_share(13, 3, 12);
        assert_eq!(big, 9);
        assert_eq!(small, 3);
    }

    #[test]
    fn minimum_one_subchannel_for_active_ap() {
        // 1 own client among 100 heard: floor gives 0, clamp to 1.
        assert_eq!(fair_share(13, 1, 100), 1);
    }

    #[test]
    fn fig5b_suboptimal_share_example() {
        // Fig 5(b): 4 subchannels; AP 1 has 2 clients and hears 4 total
        // (its 2 + 1 bridging client of AP 2 + ... in the figure AP 1
        // hears 2 own + 2 of AP 2's reachable): share = 2·4/4 = 2, not the
        // 3 it could safely take — the fundamental conservatism.
        assert_eq!(fair_share(4, 2, 4), 2);
    }

    #[test]
    #[should_panic(expected = "cannot be below")]
    fn heard_must_include_own() {
        let _ = fair_share(13, 5, 3);
    }

    proptest! {
        #[test]
        fn share_never_exceeds_total(total in 1u32..26, own in 0u32..40, extra in 0u32..40) {
            let share = fair_share(total, own, own + extra);
            prop_assert!(share <= total);
        }

        #[test]
        fn active_ap_gets_at_least_one(total in 1u32..26, own in 1u32..40, extra in 0u32..40) {
            prop_assert!(fair_share(total, own, own + extra) >= 1);
        }

        #[test]
        fn neighbourhood_shares_are_feasible(
            total in 4u32..26,
            counts in proptest::collection::vec(1u32..8, 1..6)
        ) {
            // All APs in one mutual-hearing clique: everyone hears the same
            // NP = Σ counts. The *unclamped* floor shares always fit in S
            // (the paper's formula is feasible by construction); the min-1
            // clamp can overshoot by at most one subchannel per AP whose
            // raw floor was zero — the scheduler absorbs that via sensed
            // interference (§5.4 "incorrect share").
            let np: u32 = counts.iter().sum();
            let raw_floor = |n: u32| (f64::from(n) * f64::from(total) / f64::from(np)).floor() as u32;
            let raw_sum: u32 = counts.iter().map(|&n| raw_floor(n)).sum();
            prop_assert!(raw_sum <= total, "raw sum {raw_sum} > total {total}");
            let clamped_zeros = counts.iter().filter(|&&n| raw_floor(n) == 0).count() as u32;
            let sum: u32 = counts.iter().map(|&n| fair_share(total, n, np)).sum();
            prop_assert!(
                sum <= total + clamped_zeros,
                "sum {sum} > total {total} + clamp slack {clamped_zeros} for {counts:?}"
            );
        }

        #[test]
        fn monotone_in_own_clients(total in 1u32..26, own in 1u32..20, extra in 1u32..20) {
            let np = own + extra;
            let a = fair_share(total, own, np);
            let b = fair_share(total, own + 1, np + 1);
            prop_assert!(b >= a);
        }
    }
}
