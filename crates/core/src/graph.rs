//! The interference conflict graph (§5.5).
//!
//! "We abstract the given setting as an undirected graph G = (V, E),
//! where each vertex v_i corresponds to an AP i. Two vertices are
//! connected by an edge if v_i may interfere with one of v_j's clients,
//! or vice-versa." The oracle allocator colours this graph; the theory
//! harness runs the hopping process on it; the simulator builds it from
//! ground-truth SINR to evaluate how well distributed sensing
//! approximates it.

use cellfi_types::ApId;
use std::collections::BTreeSet;

/// An undirected conflict graph over access points `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictGraph {
    adj: Vec<BTreeSet<u32>>,
}

impl ConflictGraph {
    /// An edgeless graph over `n` vertices.
    pub fn new(n: usize) -> ConflictGraph {
        ConflictGraph {
            adj: vec![BTreeSet::new(); n],
        }
    }

    /// Build from an edge list.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> ConflictGraph {
        let mut g = ConflictGraph::new(n);
        for &(a, b) in edges {
            g.add_edge(ApId::new(a), ApId::new(b));
        }
        g
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True when the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Add an undirected edge. Self-loops are rejected (an AP does not
    /// conflict with itself in this model).
    pub fn add_edge(&mut self, a: ApId, b: ApId) {
        assert_ne!(a, b, "self-loop on {a}");
        assert!(
            a.index() < self.len() && b.index() < self.len(),
            "vertex out of range"
        );
        self.adj[a.index()].insert(b.0);
        self.adj[b.index()].insert(a.0);
    }

    /// Whether `a` and `b` conflict.
    pub fn has_edge(&self, a: ApId, b: ApId) -> bool {
        self.adj[a.index()].contains(&b.0)
    }

    /// Open neighbourhood `N(v)`.
    pub fn neighbors(&self, v: ApId) -> impl Iterator<Item = ApId> + '_ {
        self.adj[v.index()].iter().map(|&i| ApId::new(i))
    }

    /// Degree of `v`.
    pub fn degree(&self, v: ApId) -> usize {
        self.adj[v.index()].len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(|s| s.len()).sum::<usize>() / 2
    }

    /// Sum of `weights` over the *closed* neighbourhood `N(v) ∪ {v}` —
    /// the local demand load that must fit into the channel.
    pub fn closed_neighborhood_weight(&self, v: ApId, weights: &[u32]) -> u32 {
        assert_eq!(weights.len(), self.len(), "one weight per vertex");
        weights[v.index()] + self.neighbors(v).map(|u| weights[u.index()]).sum::<u32>()
    }

    /// The maximum closed-neighbourhood weight over all vertices: the
    /// graph's effective channel requirement.
    pub fn max_neighborhood_weight(&self, weights: &[u32]) -> u32 {
        (0..self.len() as u32)
            .map(|v| self.closed_neighborhood_weight(ApId::new(v), weights))
            .max()
            .unwrap_or(0)
    }

    /// Verify that an assignment of subchannel sets is conflict-free:
    /// adjacent vertices use disjoint sets.
    pub fn is_conflict_free(&self, assignment: &[Vec<u32>]) -> bool {
        assert_eq!(assignment.len(), self.len());
        for v in 0..self.len() {
            for u in self.adj[v].iter().map(|&i| i as usize) {
                if u <= v {
                    continue;
                }
                let a: BTreeSet<u32> = assignment[v].iter().copied().collect();
                if assignment[u].iter().any(|s| a.contains(s)) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> ConflictGraph {
        // 0 — 1 — 2
        ConflictGraph::from_edges(3, &[(0, 1), (1, 2)])
    }

    #[test]
    fn edges_are_undirected() {
        let g = path3();
        assert!(g.has_edge(ApId::new(0), ApId::new(1)));
        assert!(g.has_edge(ApId::new(1), ApId::new(0)));
        assert!(!g.has_edge(ApId::new(0), ApId::new(2)));
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = path3();
        assert_eq!(g.degree(ApId::new(1)), 2);
        assert_eq!(g.degree(ApId::new(0)), 1);
        let n: Vec<ApId> = g.neighbors(ApId::new(1)).collect();
        assert_eq!(n, vec![ApId::new(0), ApId::new(2)]);
    }

    #[test]
    fn duplicate_edges_collapse() {
        let g = ConflictGraph::from_edges(2, &[(0, 1), (1, 0), (0, 1)]);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_rejected() {
        let mut g = ConflictGraph::new(2);
        g.add_edge(ApId::new(1), ApId::new(1));
    }

    #[test]
    fn closed_neighborhood_weight_includes_self() {
        let g = path3();
        let w = [5, 3, 2];
        assert_eq!(g.closed_neighborhood_weight(ApId::new(0), &w), 8);
        assert_eq!(g.closed_neighborhood_weight(ApId::new(1), &w), 10);
        assert_eq!(g.max_neighborhood_weight(&w), 10);
    }

    #[test]
    fn conflict_free_checks_adjacent_only() {
        let g = path3();
        // 0 and 2 may share (not adjacent); 1 must avoid both.
        let ok = vec![vec![0, 1], vec![2, 3], vec![0, 1]];
        assert!(g.is_conflict_free(&ok));
        let bad = vec![vec![0, 1], vec![1, 3], vec![5]];
        assert!(!g.is_conflict_free(&bad));
    }

    #[test]
    fn empty_graph_properties() {
        let g = ConflictGraph::new(0);
        assert!(g.is_empty());
        assert_eq!(g.max_neighborhood_weight(&[]), 0);
    }
}
