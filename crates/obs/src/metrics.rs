//! Counter/gauge/histogram registry, snapshotable at any tick.
//!
//! Keys are `(metric name, entity id)` pairs — entity is a cell, UE, or
//! channel index depending on the metric. Storage is `BTreeMap`, so a
//! snapshot iterates in a fixed order and the JSONL export is
//! deterministic. Everything is plain integers/floats: no interning, no
//! background thread, no wall clock.

use cellfi_types::time::Instant;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A `(metric name, entity index)` key. The name is `&'static str` so a
/// lookup never allocates.
pub type Key = (&'static str, u32);

/// Sample store behind a histogram metric: raw values, summarized at
/// snapshot time. A window mark ([`Histogram::mark_window`]) splits off
/// the tail recorded since the mark, so callers can summarize one
/// observation window (an IM epoch, say) without losing the cumulative
/// view.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<f64>,
    window_start: usize,
}

/// Quantile by nearest rank over a sorted copy; `None` when empty.
fn slice_quantile(samples: &[f64], q: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((q.clamp(0.0, 1.0)) * (sorted.len() - 1) as f64).round() as usize;
    Some(sorted[rank])
}

/// Arithmetic mean; `None` when empty.
fn slice_mean(samples: &[f64]) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    Some(samples.iter().sum::<f64>() / samples.len() as f64)
}

impl Histogram {
    /// Record one sample.
    pub fn observe(&mut self, v: f64) {
        self.samples.push(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Quantile by nearest rank over a sorted copy; `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        slice_quantile(&self.samples, q)
    }

    /// Arithmetic mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        slice_mean(&self.samples)
    }

    /// Smallest sample; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.samples.iter().copied().min_by(f64::total_cmp)
    }

    /// Largest sample; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.samples.iter().copied().max_by(f64::total_cmp)
    }

    /// Samples recorded since the last [`Histogram::mark_window`] (all
    /// samples before the first mark).
    pub fn window(&self) -> &[f64] {
        &self.samples[self.window_start..]
    }

    /// Close the current window: subsequent [`Histogram::window`] calls
    /// cover only samples recorded after this point.
    pub fn mark_window(&mut self) {
        self.window_start = self.samples.len();
    }
}

/// The metrics registry an engine owns. All maps are ordered, so export
/// order is fixed by key, not by insertion or hashing.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, f64>,
    histograms: BTreeMap<Key, Histogram>,
    window_log: String,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Add `by` to a counter, creating it at zero first.
    pub fn inc(&mut self, name: &'static str, entity: u32, by: u64) {
        *self.counters.entry((name, entity)).or_insert(0) += by;
    }

    /// Set a gauge to its latest value.
    pub fn set_gauge(&mut self, name: &'static str, entity: u32, value: f64) {
        self.gauges.insert((name, entity), value);
    }

    /// Record one histogram sample.
    pub fn observe(&mut self, name: &'static str, entity: u32, value: f64) {
        self.histograms
            .entry((name, entity))
            .or_default()
            .observe(value);
    }

    /// Current counter value (0 when never incremented).
    pub fn counter(&self, name: &'static str, entity: u32) -> u64 {
        self.counters.get(&(name, entity)).copied().unwrap_or(0)
    }

    /// Latest gauge value, if ever set.
    pub fn gauge(&self, name: &'static str, entity: u32) -> Option<f64> {
        self.gauges.get(&(name, entity)).copied()
    }

    /// Histogram behind a key, if any sample was recorded.
    pub fn histogram(&self, name: &'static str, entity: u32) -> Option<&Histogram> {
        self.histograms.get(&(name, entity))
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Snapshot every histogram's **current window** into the window
    /// log — one `histogram_window` JSONL line per histogram, key
    /// order, stamped `at` — then start a new window everywhere.
    ///
    /// Engines call this once per IM epoch in detail mode; the log
    /// accumulates one summary line per (histogram, window) and is
    /// exported by [`Registry::window_log`] alongside the cumulative
    /// [`Registry::snapshot_jsonl`]. Histograms with an empty window
    /// are skipped, so quiet epochs cost nothing.
    pub fn snapshot_window(&mut self, at: Instant) {
        let t = at.as_micros();
        for (&(name, entity), h) in &mut self.histograms {
            let w = h.window();
            if w.is_empty() {
                continue;
            }
            let _ = write!(
                self.window_log,
                "{{\"t\":{t},\"kind\":\"histogram_window\",\"metric\":\"{name}\",\"entity\":{entity},\"count\":{}",
                w.len()
            );
            for (field, v) in [
                ("min", w.iter().copied().min_by(f64::total_cmp)),
                ("max", w.iter().copied().max_by(f64::total_cmp)),
                ("mean", slice_mean(w)),
                ("p50", slice_quantile(w, 0.5)),
                ("p95", slice_quantile(w, 0.95)),
            ] {
                let _ = write!(self.window_log, ",\"{field}\":");
                match v {
                    Some(v) => write_f64(&mut self.window_log, v),
                    None => self.window_log.push_str("null"),
                }
            }
            self.window_log.push_str("}\n");
            h.mark_window();
        }
    }

    /// The accumulated per-window histogram snapshots (JSONL), in the
    /// order [`Registry::snapshot_window`] was called. Empty unless a
    /// window was ever snapshotted, so default exports are unchanged.
    pub fn window_log(&self) -> &str {
        &self.window_log
    }

    /// Export the registry as JSON Lines, one metric per line, stamped
    /// with the snapshot tick. Counters, then gauges, then histograms,
    /// each in key order — deterministic byte-for-byte.
    pub fn snapshot_jsonl(&self, at: Instant) -> String {
        let t = at.as_micros();
        let mut out = String::new();
        for (&(name, entity), &v) in &self.counters {
            let _ = writeln!(
                out,
                "{{\"t\":{t},\"kind\":\"counter\",\"metric\":\"{name}\",\"entity\":{entity},\"value\":{v}}}"
            );
        }
        for (&(name, entity), &v) in &self.gauges {
            let _ = write!(
                out,
                "{{\"t\":{t},\"kind\":\"gauge\",\"metric\":\"{name}\",\"entity\":{entity},\"value\":"
            );
            write_f64(&mut out, v);
            out.push_str("}\n");
        }
        for (&(name, entity), h) in &self.histograms {
            let _ = write!(
                out,
                "{{\"t\":{t},\"kind\":\"histogram\",\"metric\":\"{name}\",\"entity\":{entity},\"count\":{}",
                h.count()
            );
            for (field, v) in [
                ("min", h.min()),
                ("max", h.max()),
                ("mean", h.mean()),
                ("p50", h.quantile(0.5)),
                ("p95", h.quantile(0.95)),
            ] {
                let _ = write!(out, ",\"{field}\":");
                match v {
                    Some(v) => write_f64(&mut out, v),
                    None => out.push_str("null"),
                }
            }
            out.push_str("}\n");
        }
        out
    }
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_entity() {
        let mut r = Registry::new();
        r.inc("hops", 0, 1);
        r.inc("hops", 0, 2);
        r.inc("hops", 1, 5);
        assert_eq!(r.counter("hops", 0), 3);
        assert_eq!(r.counter("hops", 1), 5);
        assert_eq!(r.counter("hops", 2), 0);
    }

    #[test]
    fn gauges_keep_latest_value() {
        let mut r = Registry::new();
        r.set_gauge("share", 3, 6.0);
        r.set_gauge("share", 3, 4.0);
        assert_eq!(r.gauge("share", 3), Some(4.0));
        assert_eq!(r.gauge("share", 9), None);
    }

    #[test]
    fn histogram_summary_is_correct() {
        let mut h = Histogram::default();
        for v in [3.0, 1.0, 2.0, 4.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(4.0));
        assert_eq!(h.mean(), Some(2.5));
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(4.0));
    }

    #[test]
    fn empty_histogram_yields_none_not_panic() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
    }

    #[test]
    fn snapshot_is_deterministic_and_ordered() {
        let mut r = Registry::new();
        r.set_gauge("occupancy", 1, 0.5);
        r.inc("hops", 1, 2);
        r.inc("hops", 0, 7);
        r.observe("vacate_latency_us", 0, 1_500_000.0);
        let a = r.snapshot_jsonl(Instant::from_secs(5));
        let b = r.snapshot_jsonl(Instant::from_secs(5));
        assert_eq!(a, b);
        let lines: Vec<&str> = a.lines().collect();
        assert_eq!(lines.len(), 4);
        // Counters first, key-ordered: entity 0 before entity 1.
        assert!(lines[0].contains("\"entity\":0") && lines[0].contains("counter"));
        assert!(lines[1].contains("\"entity\":1"));
        assert!(lines[2].contains("gauge"));
        assert!(lines[3].contains("histogram") && lines[3].contains("\"count\":1"));
    }
}
