//! Trace query engine: filter / group-by / aggregate over JSONL traces.
//!
//! Answers questions like "per-cell hop rates" or "the vacate-margin
//! distribution" directly from a `TRACE_<exp>.jsonl` file (or a
//! `FLIGHT_<exp>.jsonl` dump — same schema) without re-running the
//! experiment. The grammar, mirrored by `exp trace-query`:
//!
//! * **filter** — `kind` (the `"ev"` field), `entity` (the kind's
//!   primary entity field, see [`entity_field`]), and an inclusive
//!   `[tick_lo, tick_hi]` microsecond range on `"t"`;
//! * **group-by** — any field name (`cell`, `ue`, `channel`, `ev`, …);
//!   rows missing the field group under `-`;
//! * **aggregate** — `count`, `sum:<field>`, `mean:<field>`, or
//!   `q<frac>:<field>` (nearest-rank quantile, e.g. `q0.9:margin_us`).
//!
//! Output is a deterministic tab-separated table: a header, one row per
//! group (numeric group keys sort numerically), and a `total` row. The
//! parser handles exactly the flat one-object-per-line JSON the tracer
//! writes; it is not a general JSON reader.

/// One parsed field value from a trace line.
#[derive(Debug, Clone, PartialEq)]
enum FieldVal<'a> {
    Num(f64),
    Str(&'a str),
    Null,
}

/// Parse one flat JSONL trace line into `(key, value)` pairs in field
/// order. Returns `None` on anything that is not a flat object of
/// numbers / plain strings / nulls.
fn parse_line(line: &str) -> Option<Vec<(&str, FieldVal<'_>)>> {
    let s = line.trim();
    let s = s.strip_prefix('{')?.strip_suffix('}')?;
    let mut out = Vec::new();
    let mut rest = s;
    while !rest.is_empty() {
        rest = rest.strip_prefix('"')?;
        let kend = rest.find('"')?;
        let key = &rest[..kend];
        rest = rest[kend + 1..].strip_prefix(':')?;
        let (val, tail) = if let Some(r) = rest.strip_prefix('"') {
            let vend = r.find('"')?;
            (FieldVal::Str(&r[..vend]), &r[vend + 1..])
        } else if let Some(r) = rest.strip_prefix("null") {
            (FieldVal::Null, r)
        } else if let Some(r) = rest.strip_prefix('[') {
            // Array values (sketch bucket lines) pass through unsplit.
            let vend = r.find(']')?;
            (FieldVal::Str(&r[..vend]), &r[vend + 1..])
        } else {
            let vend = rest
                .find(',')
                .unwrap_or(rest.len())
                .min(rest.find('}').unwrap_or(rest.len()));
            let v: f64 = rest[..vend].parse().ok()?;
            (FieldVal::Num(v), &rest[vend..])
        };
        out.push((key, val));
        match tail.strip_prefix(',') {
            Some(t) => rest = t,
            None => {
                if !tail.is_empty() {
                    return None;
                }
                rest = tail;
            }
        }
    }
    Some(out)
}

/// The primary entity field per event kind — what `--entity` filters
/// on. Mirrors `Event::entity`.
pub fn entity_field(kind: &str) -> Option<&'static str> {
    match kind {
        "hop" | "share" | "prach" | "pack" | "fault_inject" | "lease_renew" | "degrade"
        | "recover" | "sched" => Some("cell"),
        "cqi_interf" | "harq_retx" => Some("ue"),
        "paws_grant" | "paws_renew" | "paws_vacate" | "paws_vacated" => Some("channel"),
        _ => None,
    }
}

/// The aggregate operator.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Agg {
    /// Row count per group.
    #[default]
    Count,
    /// Sum of a field per group.
    Sum(String),
    /// Mean of a field per group.
    Mean(String),
    /// Nearest-rank quantile (0 < q ≤ 1) of a field per group.
    Quantile(f64, String),
}

impl Agg {
    /// Parse `count`, `sum:<field>`, `mean:<field>`, or `q<frac>:<field>`.
    pub fn parse(s: &str) -> Result<Agg, String> {
        if s == "count" {
            return Ok(Agg::Count);
        }
        let (op, field) = s.split_once(':').ok_or_else(|| {
            format!("bad aggregate {s:?}: expected count, sum:F, mean:F, or qQ:F")
        })?;
        if field.is_empty() {
            return Err(format!("bad aggregate {s:?}: empty field"));
        }
        match op {
            "sum" => Ok(Agg::Sum(field.to_owned())),
            "mean" => Ok(Agg::Mean(field.to_owned())),
            _ => {
                let q: f64 = op
                    .strip_prefix('q')
                    .and_then(|f| f.parse().ok())
                    .ok_or_else(|| format!("bad aggregate op {op:?}"))?;
                if !(q > 0.0 && q <= 1.0) {
                    return Err(format!("quantile {q} outside (0, 1]"));
                }
                Ok(Agg::Quantile(q, field.to_owned()))
            }
        }
    }

    /// The column header this aggregate prints.
    pub fn header(&self) -> String {
        match self {
            Agg::Count => "count".to_owned(),
            Agg::Sum(f) => format!("sum({f})"),
            Agg::Mean(f) => format!("mean({f})"),
            Agg::Quantile(q, f) => format!("q{q}({f})"),
        }
    }

    fn field(&self) -> Option<&str> {
        match self {
            Agg::Count => None,
            Agg::Sum(f) | Agg::Mean(f) | Agg::Quantile(_, f) => Some(f),
        }
    }
}

/// A full query: filters, optional group-by, one aggregate.
#[derive(Debug, Clone, Default)]
pub struct Query {
    /// Keep only events whose `"ev"` equals this kind.
    pub kind: Option<String>,
    /// Keep only events whose primary entity field equals this id.
    pub entity: Option<u32>,
    /// Inclusive lower tick bound, microseconds.
    pub tick_lo: Option<u64>,
    /// Inclusive upper tick bound, microseconds.
    pub tick_hi: Option<u64>,
    /// Group rows by this field; `None` aggregates everything into one
    /// `all` group.
    pub group_by: Option<String>,
    /// The aggregate to compute per group.
    pub agg: Agg,
}

/// A group key that sorts numerically when numeric, lexically otherwise
/// (numbers before strings, so mixed tables are still deterministic).
#[derive(Debug, Clone, PartialEq)]
struct GroupKey(String);

impl Eq for GroupKey {}

impl Ord for GroupKey {
    fn cmp(&self, other: &GroupKey) -> std::cmp::Ordering {
        match (self.0.parse::<f64>(), other.0.parse::<f64>()) {
            (Ok(a), Ok(b)) => a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal),
            (Ok(_), Err(_)) => std::cmp::Ordering::Less,
            (Err(_), Ok(_)) => std::cmp::Ordering::Greater,
            (Err(_), Err(_)) => self.0.cmp(&other.0),
        }
    }
}

impl PartialOrd for GroupKey {
    fn partial_cmp(&self, other: &GroupKey) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Format a number the way group keys and aggregates print: integers
/// without a trailing `.0`, everything else shortest-roundtrip.
fn format_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[derive(Default)]
struct GroupAcc {
    rows: u64,
    values: Vec<f64>,
}

/// Run `query` over a JSONL trace, returning the result table.
///
/// Errors (not panics) on unparseable lines, so a truncated trace file
/// reports its line number instead of producing a silently wrong table.
pub fn run_query(input: &str, query: &Query) -> Result<String, String> {
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<GroupKey, GroupAcc> = BTreeMap::new();
    let mut matched = 0u64;
    for (lineno, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields =
            parse_line(line).ok_or_else(|| format!("line {}: unparseable: {line}", lineno + 1))?;
        let get = |name: &str| fields.iter().find(|(k, _)| *k == name).map(|(_, v)| v);
        let tick = match get("t") {
            Some(FieldVal::Num(t)) => *t as u64,
            _ => continue, // not an event line (e.g. a sketch record)
        };
        if query.tick_lo.is_some_and(|lo| tick < lo) || query.tick_hi.is_some_and(|hi| tick > hi) {
            continue;
        }
        let ev = match get("ev") {
            Some(FieldVal::Str(ev)) => *ev,
            _ => continue,
        };
        if query.kind.as_deref().is_some_and(|k| k != ev) {
            continue;
        }
        if let Some(want) = query.entity {
            let field = entity_field(ev);
            let id = field.and_then(|f| match get(f) {
                Some(FieldVal::Num(v)) => Some(*v as u32),
                _ => None,
            });
            if id != Some(want) {
                continue;
            }
        }
        matched += 1;
        let key = match &query.group_by {
            None => GroupKey("all".to_owned()),
            Some(f) => GroupKey(match get(f) {
                Some(FieldVal::Num(v)) => format_num(*v),
                Some(FieldVal::Str(s)) => (*s).to_owned(),
                Some(FieldVal::Null) | None => "-".to_owned(),
            }),
        };
        let acc = groups.entry(key).or_default();
        acc.rows += 1;
        if let Some(f) = query.agg.field() {
            if let Some(FieldVal::Num(v)) = get(f) {
                if v.is_finite() {
                    acc.values.push(*v);
                }
            }
        }
    }

    let group_col = query.group_by.as_deref().unwrap_or("group");
    let mut out = format!("{group_col}\tn\t{}\n", query.agg.header());
    let mut total_rows = 0u64;
    let mut total_values: Vec<f64> = Vec::new();
    for (key, acc) in &groups {
        out.push_str(&format!(
            "{}\t{}\t{}\n",
            key.0,
            acc.rows,
            aggregate(&query.agg, acc)
        ));
        total_rows += acc.rows;
        total_values.extend_from_slice(&acc.values);
    }
    let total = GroupAcc {
        rows: total_rows,
        values: total_values,
    };
    out.push_str(&format!(
        "total\t{}\t{}\n",
        total.rows,
        aggregate(&query.agg, &total)
    ));
    debug_assert_eq!(matched, total.rows);
    Ok(out)
}

fn aggregate(agg: &Agg, acc: &GroupAcc) -> String {
    match agg {
        Agg::Count => format!("{}", acc.rows),
        Agg::Sum(_) => format_num(acc.values.iter().sum()),
        Agg::Mean(_) => {
            if acc.values.is_empty() {
                "-".to_owned()
            } else {
                format_num(acc.values.iter().sum::<f64>() / acc.values.len() as f64)
            }
        }
        Agg::Quantile(q, _) => {
            if acc.values.is_empty() {
                "-".to_owned()
            } else {
                let mut v = acc.values.clone();
                v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                let rank = ((q * v.len() as f64).ceil() as usize).clamp(1, v.len());
                format_num(v[rank - 1])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRACE: &str = "\
{\"t\":1000,\"ev\":\"hop\",\"cell\":0,\"from\":1,\"to\":2,\"from_utility\":0.5,\"to_utility\":1.5}
{\"t\":2000,\"ev\":\"hop\",\"cell\":1,\"from\":2,\"to\":3,\"from_utility\":1,\"to_utility\":2}
{\"t\":3000,\"ev\":\"hop\",\"cell\":0,\"from\":2,\"to\":4,\"from_utility\":2,\"to_utility\":4}
{\"t\":3500,\"ev\":\"prach\",\"cell\":0,\"ue\":7,\"snr_db\":-4.5}
{\"t\":4000,\"ev\":\"paws_vacated\",\"channel\":21,\"margin_us\":58000000}
";

    #[test]
    fn count_group_by_kind() {
        let q = Query {
            group_by: Some("ev".to_owned()),
            ..Query::default()
        };
        let out = run_query(TRACE, &q).expect("query runs");
        assert_eq!(
            out,
            "ev\tn\tcount\nhop\t3\t3\npaws_vacated\t1\t1\nprach\t1\t1\ntotal\t5\t5\n"
        );
    }

    #[test]
    fn filter_kind_entity_and_tick_range() {
        let q = Query {
            kind: Some("hop".to_owned()),
            entity: Some(0),
            tick_lo: Some(1500),
            tick_hi: Some(3000),
            ..Query::default()
        };
        let out = run_query(TRACE, &q).expect("query runs");
        assert_eq!(out, "group\tn\tcount\nall\t1\t1\ntotal\t1\t1\n");
    }

    #[test]
    fn mean_and_sum_and_quantile_aggregate_fields() {
        let mean = Query {
            kind: Some("hop".to_owned()),
            group_by: Some("cell".to_owned()),
            agg: Agg::parse("mean:to_utility").expect("valid agg"),
            ..Query::default()
        };
        let out = run_query(TRACE, &mean).expect("query runs");
        assert_eq!(
            out,
            "cell\tn\tmean(to_utility)\n0\t2\t2.75\n1\t1\t2\ntotal\t3\t2.5\n"
        );
        let sum = Query {
            agg: Agg::parse("sum:to_utility").expect("valid agg"),
            kind: Some("hop".to_owned()),
            ..Query::default()
        };
        assert!(run_query(TRACE, &sum)
            .expect("query runs")
            .ends_with("total\t3\t7.5\n"));
        let q90 = Query {
            agg: Agg::parse("q0.9:to_utility").expect("valid agg"),
            kind: Some("hop".to_owned()),
            ..Query::default()
        };
        assert!(run_query(TRACE, &q90)
            .expect("query runs")
            .ends_with("total\t3\t4\n"));
    }

    #[test]
    fn numeric_group_keys_sort_numerically() {
        let mut trace = String::new();
        for cell in [10, 2, 1] {
            trace.push_str(&format!(
                "{{\"t\":1,\"ev\":\"pack\",\"cell\":{cell},\"from\":1,\"to\":0}}\n"
            ));
        }
        let q = Query {
            group_by: Some("cell".to_owned()),
            ..Query::default()
        };
        let out = run_query(&trace, &q).expect("query runs");
        let keys: Vec<&str> = out
            .lines()
            .skip(1)
            .map(|l| l.split('\t').next().expect("key column"))
            .collect();
        assert_eq!(keys, ["1", "2", "10", "total"]);
    }

    #[test]
    fn missing_group_field_buckets_under_dash() {
        let q = Query {
            group_by: Some("ue".to_owned()),
            ..Query::default()
        };
        let out = run_query(TRACE, &q).expect("query runs");
        assert!(out.contains("-\t4\t4\n"), "{out}");
        assert!(out.contains("7\t1\t1\n"), "{out}");
    }

    #[test]
    fn malformed_line_reports_its_number() {
        let err = run_query("{\"t\":1,\"ev\":\"hop\"}\nnot json\n", &Query::default())
            .expect_err("malformed input");
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn agg_parse_rejects_garbage() {
        assert!(Agg::parse("count").is_ok());
        assert!(Agg::parse("mean:snr_db").is_ok());
        assert!(Agg::parse("q0.5:margin_us").is_ok());
        assert!(Agg::parse("median").is_err());
        assert!(Agg::parse("q1.5:x").is_err());
        assert!(Agg::parse("sum:").is_err());
    }

    #[test]
    fn null_values_and_sketch_lines_are_tolerated() {
        let trace = "\
{\"t\":1,\"ev\":\"prach\",\"cell\":0,\"ue\":1,\"snr_db\":null}
{\"sketch\":\"hop\",\"count\":3,\"valued\":3,\"sum\":4.5,\"lo\":0,\"hi\":50,\"buckets\":[1,2,0]}
";
        let q = Query {
            agg: Agg::parse("mean:snr_db").expect("valid agg"),
            ..Query::default()
        };
        let out = run_query(trace, &q).expect("query runs");
        assert_eq!(out, "group\tn\tmean(snr_db)\nall\t1\t-\ntotal\t1\t-\n");
    }
}
