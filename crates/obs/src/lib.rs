//! CellFi observability: deterministic tracing, metrics, and profiling.
//!
//! Three small, dependency-free layers that the engine crates thread
//! through their hot paths:
//!
//! * [`trace`] — a structured event stream keyed on **simulation ticks**
//!   (never wall clock): hop decisions with bucket utilities, PRACH
//!   foreign-client detections, sub-band CQI interference flags, share
//!   recalculations, re-use packing moves, and PAWS lease/renew/vacate
//!   transitions with deadline margins. Per-entity sinks merge in entity
//!   index order, so the byte stream is identical for any
//!   `CELLFI_THREADS` setting.
//! * [`metrics`] — a registry of counters/gauges/histograms snapshotable
//!   at any tick and exported as JSONL.
//! * [`profile`] — a hierarchical span profiler from the harness tick
//!   down to the caches. The library never reads a clock itself: the
//!   bench/bin layer injects a `fn() -> u64` nanosecond source, keeping
//!   cellfi-lint's determinism rule intact for every lib crate.
//! * [`monitor`] — online invariant monitors (ETSI vacate margin, RLF
//!   ceiling, scheduler starvation, cache hit floor) backed by the
//!   tracer's flight-recorder ring.
//! * [`query`] — filter / group-by / aggregate over emitted JSONL
//!   traces (`exp trace-query`).
//!
//! Everything is allocation-free on the disabled path: a disabled
//! [`trace::Tracer`] or [`profile::Profiler`] costs one branch per call
//! site (cellfi-lint rule O checks the call sites stay that way).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod monitor;
pub mod profile;
pub mod query;
pub mod trace;

pub use metrics::Registry;
pub use monitor::{MonitorRegistry, TickFacts, Violation};
pub use profile::{Profiler, SpanId};
pub use trace::{Event, EventSink, SampleSpec, Tracer};

/// The full observability bundle an engine owns: one tracer, one metrics
/// registry, one profiler, one monitor registry. Constructed disabled by
/// default; each layer is switched on independently (tracing by
/// `--trace`, sampling by `--sample`, monitors by `--monitors`,
/// profiling by the bench harness installing a clock).
#[derive(Debug, Clone, Default)]
pub struct Obs {
    /// Tick-keyed structured event stream (with optional sampling and
    /// flight-recorder layers).
    pub tracer: Tracer,
    /// Counter/gauge/histogram registry.
    pub metrics: Registry,
    /// Injected-clock hierarchical span profiler.
    pub profiler: Profiler,
    /// Online invariant monitors ([`monitor`]); disarmed by default.
    pub monitors: MonitorRegistry,
    /// Detail stream switch (`--trace-detail`): when set, engines also
    /// emit high-rate events (per-epoch `sched` occupancy decisions,
    /// per-block `harq_retx`) and per-epoch histogram window snapshots.
    /// Off by default so the standard trace stays byte-identical.
    pub detail: bool,
}

impl Obs {
    /// A fully disabled bundle: no event storage, no clock, near-zero
    /// per-call cost.
    pub fn disabled() -> Obs {
        Obs::default()
    }
}
