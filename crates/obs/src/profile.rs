//! Hierarchical span profiler with an injected clock.
//!
//! Library crates must never read wall clock (cellfi-lint rule D), yet
//! the ROADMAP's "fast as the hardware allows" goal needs per-stage
//! timings. The resolution: the profiler holds an optional `fn() -> u64`
//! nanosecond source that only the bench/bin layer installs (bins are
//! exempt from the clock rule). With no clock installed, `begin`/`end`
//! are branches on a `None` and the engine's behaviour is untouched —
//! timings are observational and never feed back into simulation state.
//!
//! Spans nest: `begin(A); begin(B); end(B); end(A)` records `B` as a
//! child of `A` in a call tree, so time is attributed both as **total**
//! (span plus everything below it) and **self** (total minus children).
//! The same [`SpanId`] may appear at several places in the tree — e.g.
//! `sinr_cache` shows up both under `cqi_scan` and directly under
//! `subframe` — and each position keeps its own node. [`Profiler::tree`]
//! exports the call tree and [`Profiler::folded`] renders it as folded
//! stacks (`a;b;c self_ns` lines) for standard flamegraph tooling.

/// The instrumented stages, from the harness tick down to the caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanId {
    /// One `SimHarness` tick: offer traffic, run the engine, deliver.
    HarnessTick,
    /// One engine subframe (`step_subframe`).
    Subframe,
    /// Proportional-fair downlink/uplink scheduling pass.
    MacSchedule,
    /// Memoized per-subchannel interference accumulation
    /// (`InterferenceCache::refresh`).
    SinrCache,
    /// Per-link fading redraw at block boundaries.
    FadingScan,
    /// Per-UE sub-band CQI measurement scan.
    CqiScan,
    /// Interference-management epoch (hop/share/pack decisions).
    ImEpoch,
    /// One PAWS lease-lifecycle step (`LeaseLifecycle::step`).
    LeaseStep,
    /// PRACH preamble correlation (frequency-domain detector).
    PrachCorrelator,
    /// Spatial-index and neighbor-table construction (grid bucketing,
    /// ring queries, CSR assembly) at scenario/engine build time.
    SpatialBuild,
}

impl SpanId {
    /// Every span, in export order (outermost first).
    pub const ALL: [SpanId; 10] = [
        SpanId::HarnessTick,
        SpanId::Subframe,
        SpanId::MacSchedule,
        SpanId::SinrCache,
        SpanId::FadingScan,
        SpanId::CqiScan,
        SpanId::ImEpoch,
        SpanId::LeaseStep,
        SpanId::PrachCorrelator,
        SpanId::SpatialBuild,
    ];

    /// Stable snake_case name used in `BENCH_obs.json` / `BENCH_flame.txt`.
    pub fn name(self) -> &'static str {
        match self {
            SpanId::HarnessTick => "harness_tick",
            SpanId::Subframe => "subframe",
            SpanId::MacSchedule => "mac_schedule",
            SpanId::SinrCache => "sinr_cache",
            SpanId::FadingScan => "fading_scan",
            SpanId::CqiScan => "cqi_scan",
            SpanId::ImEpoch => "im_epoch",
            SpanId::LeaseStep => "lease_step",
            SpanId::PrachCorrelator => "prach_correlator",
            SpanId::SpatialBuild => "spatial_build",
        }
    }
}

/// Accumulated timing for one span (or one tree node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStats {
    /// Total nanoseconds inside the span, children included.
    pub total_ns: u64,
    /// Nanoseconds inside the span minus nanoseconds inside its
    /// children: `self_ns + Σ child.total_ns == total_ns` exactly.
    pub self_ns: u64,
    /// Number of times the span completed.
    pub count: u64,
}

/// One exported call-tree position, preorder.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeNode {
    /// Span names from the tree root down to this node, `;`-joined
    /// (the folded-stack line prefix).
    pub path: String,
    /// Nesting depth (0 = top-level span).
    pub depth: usize,
    /// The span at this position.
    pub span: SpanId,
    /// Timing at this position only (not merged with other positions of
    /// the same span elsewhere in the tree).
    pub stats: SpanStats,
}

/// No parent: a top-level tree node.
const NO_PARENT: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node {
    span: SpanId,
    parent: u32,
    /// Children in first-seen order (deterministic: simulation order).
    children: Vec<u32>,
    total_ns: u64,
    child_ns: u64,
    count: u64,
}

/// Call-tree span accumulator. Disabled (no clock) it records nothing
/// and every `begin`/`end` is a single branch.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    clock: Option<fn() -> u64>,
    nodes: Vec<Node>,
    /// Top-level node indices in first-seen order.
    roots: Vec<u32>,
    /// Open spans: `(node index, start ns)`, innermost last.
    stack: Vec<(u32, u64)>,
}

impl Profiler {
    /// A profiler with no clock: `begin`/`end` are near-free no-ops.
    pub fn disabled() -> Profiler {
        Profiler::default()
    }

    /// A profiler reading nanoseconds from `clock`. Install only from
    /// the bench/bin layer — library code has no wall-clock source.
    pub fn with_clock(clock: fn() -> u64) -> Profiler {
        Profiler {
            clock: Some(clock),
            ..Profiler::default()
        }
    }

    /// Whether a clock is installed.
    pub fn is_enabled(&self) -> bool {
        self.clock.is_some()
    }

    /// Open a span nested under the innermost currently-open span.
    #[inline]
    pub fn begin(&mut self, span: SpanId) {
        if let Some(clock) = self.clock {
            let now = clock();
            self.push(span, now);
        }
    }

    /// Close the innermost open span. `span` must match it (checked in
    /// debug builds); a mismatched or spurious `end` is ignored rather
    /// than corrupting the tree.
    #[inline]
    pub fn end(&mut self, span: SpanId) {
        if let Some(clock) = self.clock {
            let now = clock();
            self.pop(span, now);
        }
    }

    fn push(&mut self, span: SpanId, now: u64) {
        let parent = match self.stack.last() {
            Some(&(n, _)) => n,
            None => NO_PARENT,
        };
        let existing = {
            let siblings: &[u32] = if parent == NO_PARENT {
                &self.roots
            } else {
                &self.nodes[parent as usize].children
            };
            siblings
                .iter()
                .copied()
                .find(|&c| self.nodes[c as usize].span == span)
        };
        let node = match existing {
            Some(n) => n,
            None => {
                let id = self.nodes.len() as u32;
                self.nodes.push(Node {
                    span,
                    parent,
                    children: Vec::new(),
                    total_ns: 0,
                    child_ns: 0,
                    count: 0,
                });
                if parent == NO_PARENT {
                    self.roots.push(id);
                } else {
                    self.nodes[parent as usize].children.push(id);
                }
                id
            }
        };
        self.stack.push((node, now));
    }

    fn pop(&mut self, span: SpanId, now: u64) {
        let (node, start) = match self.stack.last() {
            Some(&(n, s)) if self.nodes[n as usize].span == span => (n, s),
            // Mismatched end: leave the open span alone. Debug builds
            // flag the call-site bug; release builds stay consistent.
            _ => {
                debug_assert!(false, "Profiler::end span does not match open span");
                return;
            }
        };
        self.stack.pop();
        let elapsed = now.saturating_sub(start);
        let n = &mut self.nodes[node as usize];
        n.total_ns += elapsed;
        n.count += 1;
        let parent = n.parent;
        if parent != NO_PARENT {
            self.nodes[parent as usize].child_ns += elapsed;
        }
    }

    /// Stats for `span` merged across every tree position it occurs at
    /// (the flat per-span view `BENCH_obs.json` pins).
    pub fn stats(&self, span: SpanId) -> SpanStats {
        let mut out = SpanStats::default();
        for n in &self.nodes {
            if n.span == span {
                out.total_ns += n.total_ns;
                out.self_ns += n.total_ns.saturating_sub(n.child_ns);
                out.count += n.count;
            }
        }
        out
    }

    /// `(name, stats)` for every span, in export order.
    pub fn report(&self) -> Vec<(&'static str, SpanStats)> {
        SpanId::ALL
            .iter()
            .map(|&s| (s.name(), self.stats(s)))
            .collect()
    }

    /// The call tree in preorder, children in first-seen order.
    pub fn tree(&self) -> Vec<TreeNode> {
        let mut out = Vec::with_capacity(self.nodes.len());
        for &r in &self.roots {
            self.walk(r, "", 0, &mut out);
        }
        out
    }

    fn walk(&self, node: u32, prefix: &str, depth: usize, out: &mut Vec<TreeNode>) {
        let n = &self.nodes[node as usize];
        let path = if prefix.is_empty() {
            n.span.name().to_owned()
        } else {
            let mut p = String::with_capacity(prefix.len() + 1 + n.span.name().len());
            p.push_str(prefix);
            p.push(';');
            p.push_str(n.span.name());
            p
        };
        out.push(TreeNode {
            path: path.clone(),
            depth,
            span: n.span,
            stats: SpanStats {
                total_ns: n.total_ns,
                self_ns: n.total_ns.saturating_sub(n.child_ns),
                count: n.count,
            },
        });
        for &c in &n.children {
            self.walk(c, &path, depth + 1, out);
        }
    }

    /// Folded-stack rendering of the call tree: one `path self_ns` line
    /// per node with completed calls, flamegraph.pl / inferno compatible.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for node in self.tree() {
            if node.stats.count == 0 {
                continue;
            }
            out.push_str(&node.path);
            out.push(' ');
            out.push_str(&node.stats.self_ns.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic fake clock: monotonically advancing counter.
    fn fake_clock() -> u64 {
        use std::sync::atomic::{AtomicU64, Ordering};
        static TICKS: AtomicU64 = AtomicU64::new(0);
        TICKS.fetch_add(10, Ordering::Relaxed)
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let mut p = Profiler::disabled();
        p.begin(SpanId::SinrCache);
        p.end(SpanId::SinrCache);
        assert_eq!(p.stats(SpanId::SinrCache), SpanStats::default());
        assert!(!p.is_enabled());
        assert!(p.tree().is_empty());
        assert_eq!(p.folded(), "");
    }

    #[test]
    fn injected_clock_accumulates_spans() {
        let mut p = Profiler::with_clock(fake_clock);
        p.begin(SpanId::CqiScan);
        p.end(SpanId::CqiScan);
        p.begin(SpanId::CqiScan);
        p.end(SpanId::CqiScan);
        let s = p.stats(SpanId::CqiScan);
        assert_eq!(s.count, 2);
        assert_eq!(s.total_ns, 20, "two spans, one 10-tick gap each");
        assert_eq!(s.self_ns, 20, "no children: self == total");
        assert_eq!(p.stats(SpanId::FadingScan).count, 0);
    }

    #[test]
    fn nesting_attributes_self_and_total() {
        // begin A (t=0) begin B (t=10) end B (t=20) begin C (t=30)
        // end C (t=40) end A (t=50): A total 50, children 20, self 30.
        let mut p = Profiler::with_clock(fake_clock);
        p.begin(SpanId::Subframe);
        p.begin(SpanId::MacSchedule);
        p.end(SpanId::MacSchedule);
        p.begin(SpanId::CqiScan);
        p.end(SpanId::CqiScan);
        p.end(SpanId::Subframe);
        let a = p.stats(SpanId::Subframe);
        assert_eq!(a.total_ns, 50);
        assert_eq!(a.self_ns, 30);
        let b = p.stats(SpanId::MacSchedule);
        assert_eq!((b.total_ns, b.self_ns, b.count), (10, 10, 1));
        // Self plus child totals equals parent total exactly.
        assert_eq!(
            a.self_ns + b.total_ns + p.stats(SpanId::CqiScan).total_ns,
            a.total_ns
        );
    }

    #[test]
    fn same_span_keeps_distinct_tree_positions() {
        let mut p = Profiler::with_clock(fake_clock);
        p.begin(SpanId::CqiScan);
        p.begin(SpanId::SinrCache);
        p.end(SpanId::SinrCache);
        p.end(SpanId::CqiScan);
        p.begin(SpanId::SinrCache);
        p.end(SpanId::SinrCache);
        let paths: Vec<String> = p.tree().into_iter().map(|n| n.path).collect();
        assert_eq!(
            paths,
            ["cqi_scan", "cqi_scan;sinr_cache", "sinr_cache"],
            "one node per position, preorder"
        );
        // The flat view merges both positions.
        assert_eq!(p.stats(SpanId::SinrCache).count, 2);
    }

    #[test]
    fn folded_emits_one_line_per_completed_node() {
        let mut p = Profiler::with_clock(fake_clock);
        p.begin(SpanId::HarnessTick);
        p.begin(SpanId::Subframe);
        p.end(SpanId::Subframe);
        p.end(SpanId::HarnessTick);
        let folded = p.folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("harness_tick "));
        assert!(lines[1].starts_with("harness_tick;subframe "));
        // Every line is `path value` with a numeric value.
        for l in lines {
            let (_, v) = l.rsplit_once(' ').expect("folded line has a value");
            v.parse::<u64>().expect("folded value is an integer");
        }
    }

    #[test]
    fn report_covers_every_span_in_order() {
        let p = Profiler::disabled();
        let names: Vec<&str> = p.report().into_iter().map(|(n, _)| n).collect();
        assert_eq!(
            names,
            [
                "harness_tick",
                "subframe",
                "mac_schedule",
                "sinr_cache",
                "fading_scan",
                "cqi_scan",
                "im_epoch",
                "lease_step",
                "prach_correlator",
                "spatial_build"
            ]
        );
    }
}
