//! Span timers with an injected clock.
//!
//! Library crates must never read wall clock (cellfi-lint rule D), yet
//! the ROADMAP's "fast as the hardware allows" goal needs per-stage
//! timings. The resolution: the profiler holds an optional `fn() -> u64`
//! nanosecond source that only the bench/bin layer installs (bins are
//! exempt from the clock rule). With no clock installed, `begin`/`end`
//! are branches on a `None` and the engine's behaviour is untouched —
//! timings are observational and never feed back into simulation state.

/// The instrumented hot-path stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanId {
    /// Memoized per-subchannel interference accumulation
    /// (`InterferenceCache::refresh`).
    SinrCache,
    /// Per-link fading redraw at block boundaries.
    FadingScan,
    /// Per-UE sub-band CQI measurement scan.
    CqiScan,
    /// PRACH preamble correlation (frequency-domain detector).
    PrachCorrelator,
}

impl SpanId {
    /// Every span, in export order.
    pub const ALL: [SpanId; 4] = [
        SpanId::SinrCache,
        SpanId::FadingScan,
        SpanId::CqiScan,
        SpanId::PrachCorrelator,
    ];

    /// Stable snake_case name used in `BENCH_obs.json`.
    pub fn name(self) -> &'static str {
        match self {
            SpanId::SinrCache => "sinr_cache",
            SpanId::FadingScan => "fading_scan",
            SpanId::CqiScan => "cqi_scan",
            SpanId::PrachCorrelator => "prach_correlator",
        }
    }

    fn index(self) -> usize {
        match self {
            SpanId::SinrCache => 0,
            SpanId::FadingScan => 1,
            SpanId::CqiScan => 2,
            SpanId::PrachCorrelator => 3,
        }
    }
}

/// Accumulated timing for one span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStats {
    /// Total nanoseconds spent inside the span.
    pub total_ns: u64,
    /// Number of times the span completed.
    pub count: u64,
}

/// Span-timer accumulator. Disabled (no clock) it records nothing.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    clock: Option<fn() -> u64>,
    stats: [SpanStats; SpanId::ALL.len()],
}

impl Profiler {
    /// A profiler with no clock: `begin`/`end` are near-free no-ops.
    pub fn disabled() -> Profiler {
        Profiler::default()
    }

    /// A profiler reading nanoseconds from `clock`. Install only from
    /// the bench/bin layer — library code has no wall-clock source.
    pub fn with_clock(clock: fn() -> u64) -> Profiler {
        Profiler {
            clock: Some(clock),
            stats: [SpanStats::default(); SpanId::ALL.len()],
        }
    }

    /// Whether a clock is installed.
    pub fn is_enabled(&self) -> bool {
        self.clock.is_some()
    }

    /// Start a span: the current clock reading, or 0 when disabled.
    #[inline]
    pub fn begin(&self) -> u64 {
        match self.clock {
            Some(clock) => clock(),
            None => 0,
        }
    }

    /// Finish a span started at `begin`. One branch when disabled.
    #[inline]
    pub fn end(&mut self, span: SpanId, begin: u64) {
        if let Some(clock) = self.clock {
            let s = &mut self.stats[span.index()];
            s.total_ns += clock().saturating_sub(begin);
            s.count += 1;
        }
    }

    /// Accumulated stats for one span.
    pub fn stats(&self, span: SpanId) -> SpanStats {
        self.stats[span.index()]
    }

    /// `(name, stats)` for every span, in export order.
    pub fn report(&self) -> Vec<(&'static str, SpanStats)> {
        SpanId::ALL
            .iter()
            .map(|&s| (s.name(), self.stats(s)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let mut p = Profiler::disabled();
        let t0 = p.begin();
        assert_eq!(t0, 0);
        p.end(SpanId::SinrCache, t0);
        assert_eq!(p.stats(SpanId::SinrCache), SpanStats::default());
        assert!(!p.is_enabled());
    }

    #[test]
    fn injected_clock_accumulates_spans() {
        // A deterministic fake clock: monotonically advancing counter.
        fn fake_clock() -> u64 {
            use std::sync::atomic::{AtomicU64, Ordering};
            static TICKS: AtomicU64 = AtomicU64::new(0);
            TICKS.fetch_add(10, Ordering::Relaxed)
        }
        let mut p = Profiler::with_clock(fake_clock);
        let t0 = p.begin();
        p.end(SpanId::CqiScan, t0);
        let t1 = p.begin();
        p.end(SpanId::CqiScan, t1);
        let s = p.stats(SpanId::CqiScan);
        assert_eq!(s.count, 2);
        assert_eq!(s.total_ns, 20, "two spans, one 10-tick gap each");
        assert_eq!(p.stats(SpanId::FadingScan).count, 0);
    }

    #[test]
    fn report_covers_every_span_in_order() {
        let p = Profiler::disabled();
        let names: Vec<&str> = p.report().into_iter().map(|(n, _)| n).collect();
        assert_eq!(
            names,
            ["sinr_cache", "fading_scan", "cqi_scan", "prach_correlator"]
        );
    }
}
