//! Tick-keyed structured event tracing.
//!
//! Events are typed and carry only `Copy` numeric fields, so *building*
//! an event never allocates — the only allocation on an enabled tracer
//! is the `Vec` push, and a disabled tracer costs one branch. Timestamps
//! are simulation [`Instant`]s; wall clock never appears in a trace, so
//! two runs with the same seed produce byte-identical streams regardless
//! of `CELLFI_THREADS` (the per-entity [`EventSink`] merge below is what
//! makes that hold inside parallel regions).

use cellfi_types::time::Instant;
use std::fmt::Write as _;

/// One typed observation from an engine layer.
///
/// Numbers only: entity ids are `u32` indices, times are microseconds of
/// simulation time, and dB/utility values are `f64`. String payloads are
/// deliberately impossible — they would allocate at emission time and
/// invite nondeterministic formatting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// Bucket-driven subchannel hop (§5.3) with the utilities that drove
    /// the choice: the drained subchannel's utility and the target's.
    Hop {
        /// Hopping cell.
        cell: u32,
        /// Subchannel given up.
        from: u32,
        /// Subchannel acquired instead.
        to: u32,
        /// Utility of the subchannel given up.
        from_utility: f64,
        /// Utility of the acquired subchannel (maximum over candidates).
        to_utility: f64,
    },
    /// Share recalculation from PRACH counts (§5.2): `share = max(1,
    /// floor(n_sub * own / heard))` clamped to the channel.
    Share {
        /// Recalculating cell.
        cell: u32,
        /// `N_i`: the cell's own active clients.
        own_active: u32,
        /// `NP_i`: all active clients heard via PRACH, incl. its own.
        heard_active: u32,
        /// The computed share `S_i`.
        share: u32,
    },
    /// A foreign active client's PRACH reached this cell above the
    /// −10 dB sensing threshold (§5.1).
    PrachHeard {
        /// Sensing cell.
        cell: u32,
        /// The foreign client heard.
        ue: u32,
        /// Uplink SNR of the client's PRACH at this cell.
        snr_db: f64,
    },
    /// A sub-band CQI report first flagged (ue, subchannel) as interfered
    /// this epoch: SINR fell more than the margin below the clean SNR.
    CqiInterference {
        /// Reporting client.
        ue: u32,
        /// Flagged subchannel.
        subchannel: u32,
        /// Observed SINR on the subchannel.
        sinr_db: f64,
        /// Interference-free SNR baseline on the subchannel.
        clean_db: f64,
    },
    /// Re-use packing move (§5.3): relocation toward low indices onto
    /// subchannels every recent client observed as free.
    Pack {
        /// Packing cell.
        cell: u32,
        /// Subchannel vacated.
        from: u32,
        /// Lower-indexed subchannel taken instead.
        to: u32,
    },
    /// PAWS database granted a channel lease.
    PawsGrant {
        /// Granted TVWS channel number.
        channel: u32,
        /// Lease expiry, microseconds of simulation time.
        expires_us: u64,
    },
    /// PAWS lease renewed before expiry.
    PawsRenew {
        /// Renewed TVWS channel number.
        channel: u32,
        /// New lease expiry, microseconds of simulation time.
        expires_us: u64,
    },
    /// The database withdrew the channel: vacate ordered, ETSI 60 s
    /// deadline armed.
    PawsVacate {
        /// Withdrawn TVWS channel number.
        channel: u32,
        /// Absolute vacate deadline, microseconds of simulation time.
        deadline_us: u64,
    },
    /// Transmission confirmed stopped on a withdrawn channel.
    PawsVacated {
        /// Vacated TVWS channel number.
        channel: u32,
        /// Margin left before the deadline (0 when the deadline was
        /// already missed — a compliance violation).
        margin_us: u64,
    },
    /// The fault injector perturbed a PAWS exchange for a cell's client.
    FaultInject {
        /// Affected cell (AP index).
        cell: u32,
        /// Fault kind code (`FaultKind::code()` in `cellfi-spectrum`):
        /// 0 request lost, 1 response delayed, 2 outage, 3 transient
        /// error, 4 truncated grants, 5 revocation.
        kind: u32,
    },
    /// The resilient lifecycle renewed/confirmed a cell's lease.
    LeaseRenew {
        /// Renewing cell (AP index).
        cell: u32,
        /// Confirmed TVWS channel number.
        channel: u32,
        /// New lease expiry, microseconds of simulation time.
        expires_us: u64,
    },
    /// A degradation-ladder rung fired for a cell.
    Degrade {
        /// Degrading cell (AP index).
        cell: u32,
        /// Channel after the rung (the vacated channel for a
        /// preemptive vacate).
        channel: u32,
        /// Rung code (`DegradeStep::code()`): 0 channel fallback,
        /// 1 EIRP reduction, 2 preemptive vacate.
        step: u32,
    },
    /// A cell recovered from backoff/degradation to normal operation.
    Recover {
        /// Recovering cell (AP index).
        cell: u32,
        /// Channel operating on after recovery.
        channel: u32,
    },
    /// Per-epoch scheduler occupancy decision (detail stream): the
    /// subchannel mask a cell will schedule over until the next epoch.
    Sched {
        /// Deciding cell.
        cell: u32,
        /// Bitmask of allowed subchannels (bit `s` set ⇔ subchannel `s`
        /// in the mask; grids are ≤ 32 subchannels).
        mask_bits: u32,
        /// Number of subchannels in the mask.
        owned: u32,
    },
    /// A downlink transport block failed its first decode and stays in
    /// its HARQ process for retransmission (detail stream).
    HarqRetx {
        /// Receiving client.
        ue: u32,
        /// Serving cell.
        cell: u32,
        /// HARQ process holding the block.
        process: u32,
    },
    /// Spatial-index cull summary for one client: how many candidate
    /// APs survived the received-power floor and how many the index
    /// culled. Emitted once per UE when a `cull_floor_dbm` is set; a
    /// dense (floor off) run emits none.
    Cull {
        /// Reporting client.
        ue: u32,
        /// Candidate APs kept in the neighbor list (incl. serving).
        kept: u32,
        /// APs culled below the received-power floor.
        culled: u32,
    },
    /// A spectrum-database shard entered a scheduled outage window
    /// (fleet runs: every lifecycle on the shard rides it out alone).
    ShardOutage {
        /// Affected database shard.
        shard: u32,
        /// Outage window end, microseconds of simulation time.
        until_us: u64,
    },
    /// An availability query was served from a shard's response cache
    /// instead of reaching the database.
    CacheHit {
        /// Serving database shard.
        shard: u32,
        /// Age of the replayed response, microseconds — the regulatory
        /// confidence window ages by exactly this much.
        age_us: u64,
    },
    /// A per-shard request-rate window closed with traffic: the batch
    /// of renewals/queries the shard absorbed in one accounting window.
    RenewBatch {
        /// Reporting database shard.
        shard: u32,
        /// Requests served in the window.
        size: u32,
    },
}

/// Number of distinct event kinds (one per [`Event`] variant).
pub const N_KINDS: usize = 19;

impl Event {
    /// Stable kind name — the `"ev"` field value in the JSONL stream.
    pub fn kind(&self) -> &'static str {
        KIND_NAMES[self.kind_code() as usize]
    }

    /// Dense kind code, `0..N_KINDS`, stable across releases (new kinds
    /// append). Sampling keys and sketch tables index on it.
    pub fn kind_code(&self) -> u32 {
        match self {
            Event::Hop { .. } => 0,
            Event::Share { .. } => 1,
            Event::PrachHeard { .. } => 2,
            Event::CqiInterference { .. } => 3,
            Event::Pack { .. } => 4,
            Event::PawsGrant { .. } => 5,
            Event::PawsRenew { .. } => 6,
            Event::PawsVacate { .. } => 7,
            Event::PawsVacated { .. } => 8,
            Event::FaultInject { .. } => 9,
            Event::LeaseRenew { .. } => 10,
            Event::Degrade { .. } => 11,
            Event::Recover { .. } => 12,
            Event::Sched { .. } => 13,
            Event::HarqRetx { .. } => 14,
            Event::Cull { .. } => 15,
            Event::ShardOutage { .. } => 16,
            Event::CacheHit { .. } => 17,
            Event::RenewBatch { .. } => 18,
        }
    }

    /// The event's primary entity id: the cell for cell-scoped events,
    /// the UE for per-client reports, the channel for PAWS lease events.
    /// Stratified sampling keys on `(kind_code, entity)`.
    pub fn entity(&self) -> u32 {
        match *self {
            Event::Hop { cell, .. }
            | Event::Share { cell, .. }
            | Event::PrachHeard { cell, .. }
            | Event::Pack { cell, .. }
            | Event::FaultInject { cell, .. }
            | Event::LeaseRenew { cell, .. }
            | Event::Degrade { cell, .. }
            | Event::Recover { cell, .. }
            | Event::Sched { cell, .. } => cell,
            Event::CqiInterference { ue, .. }
            | Event::HarqRetx { ue, .. }
            | Event::Cull { ue, .. } => ue,
            Event::PawsGrant { channel, .. }
            | Event::PawsRenew { channel, .. }
            | Event::PawsVacate { channel, .. }
            | Event::PawsVacated { channel, .. } => channel,
            Event::ShardOutage { shard, .. }
            | Event::CacheHit { shard, .. }
            | Event::RenewBatch { shard, .. } => shard,
        }
    }

    /// The magnitude a histogram sketch aggregates for this kind, if the
    /// kind has one (pure lease bookkeeping events are count-only).
    /// Vacate margins are scaled to seconds so they fit a fixed range.
    pub fn value(&self) -> Option<f64> {
        match *self {
            Event::Hop { to_utility, .. } => Some(to_utility),
            Event::Share { share, .. } => Some(share as f64),
            Event::PrachHeard { snr_db, .. } => Some(snr_db),
            Event::CqiInterference { sinr_db, .. } => Some(sinr_db),
            Event::Pack { to, .. } => Some(to as f64),
            Event::PawsGrant { .. }
            | Event::PawsRenew { .. }
            | Event::PawsVacate { .. }
            | Event::LeaseRenew { .. }
            | Event::Recover { .. } => None,
            Event::PawsVacated { margin_us, .. } => Some(margin_us as f64 / 1e6),
            Event::FaultInject { kind, .. } => Some(kind as f64),
            Event::Degrade { step, .. } => Some(step as f64),
            Event::Sched { owned, .. } => Some(owned as f64),
            Event::HarqRetx { process, .. } => Some(process as f64),
            Event::Cull { culled, .. } => Some(culled as f64),
            Event::ShardOutage { .. } => None,
            Event::CacheHit { age_us, .. } => Some(age_us as f64 / 1e6),
            Event::RenewBatch { size, .. } => Some(size as f64),
        }
    }
}

/// Kind names indexed by [`Event::kind_code`].
pub const KIND_NAMES: [&str; N_KINDS] = [
    "hop",
    "share",
    "prach",
    "cqi_interf",
    "pack",
    "paws_grant",
    "paws_renew",
    "paws_vacate",
    "paws_vacated",
    "fault_inject",
    "lease_renew",
    "degrade",
    "recover",
    "sched",
    "harq_retx",
    "cull",
    "shard_outage",
    "cache_hit",
    "renew_batch",
];

/// Per-kind sketch value range `(lo, hi)` — fixed at compile time so two
/// sketches for the same kind always have identical bucket edges and
/// merge bucket-by-bucket.
pub fn sketch_range(kind_code: u32) -> (f64, f64) {
    match kind_code {
        0 => (0.0, 1e8),    // hop: acquired-subchannel utility (bps scale)
        1 => (0.0, 32.0),   // share: computed share S_i
        2 => (-40.0, 40.0), // prach: uplink SNR dB
        3 => (-40.0, 40.0), // cqi_interf: observed SINR dB
        4 => (0.0, 32.0),   // pack: target subchannel index
        8 => (0.0, 120.0),  // paws_vacated: margin seconds
        9 => (0.0, 8.0),    // fault_inject: fault kind code
        11 => (0.0, 4.0),   // degrade: ladder rung code
        13 => (0.0, 32.0),  // sched: owned subchannel count
        14 => (0.0, 16.0),  // harq_retx: HARQ process index
        15 => (0.0, 64.0),  // cull: culled candidate-AP count
        17 => (0.0, 16.0),  // cache_hit: replayed-response age seconds
        18 => (0.0, 256.0), // renew_batch: requests per rate window
        _ => (0.0, 1.0),    // count-only kinds never bucket a value
    }
}

/// An event with the simulation tick at which it was observed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Record {
    /// Simulation time of the observation, microseconds.
    pub tick_us: u64,
    /// The observation.
    pub event: Event,
}

/// Deterministic stratified sampling: keep `keep` out of every `out_of`
/// `(kind, entity)` strata.
///
/// The keep/drop decision is a pure function of `(entity_id, kind)` — no
/// counters, no RNG state, no emission order — so a given cell's hops
/// are either *all* in the sampled trace or *all* aggregated into the
/// sketch, and the sampled byte stream is identical for any
/// `CELLFI_THREADS` setting and any worker interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleSpec {
    /// Strata kept per `out_of` (clamped: `keep >= out_of` keeps all).
    pub keep: u32,
    /// Stratum modulus.
    pub out_of: u32,
}

impl SampleSpec {
    /// Keep everything (the default: traces stay full fidelity).
    pub const FULL: SampleSpec = SampleSpec { keep: 1, out_of: 1 };

    /// Parse `"K/N"` (e.g. `"1/8"`). `None` on malformed input or a
    /// zero modulus.
    pub fn parse(s: &str) -> Option<SampleSpec> {
        let (k, n) = s.split_once('/')?;
        let keep: u32 = k.trim().parse().ok()?;
        let out_of: u32 = n.trim().parse().ok()?;
        if out_of == 0 {
            return None;
        }
        Some(SampleSpec { keep, out_of })
    }

    /// Whether this spec keeps every event.
    pub fn is_full(&self) -> bool {
        self.keep >= self.out_of
    }

    /// Whether `event`'s `(kind, entity)` stratum is in the sample.
    /// Pure: same event, same answer, forever.
    #[inline]
    pub fn keeps(&self, event: &Event) -> bool {
        if self.is_full() {
            return true;
        }
        let key = ((event.kind_code() as u64) << 32) | event.entity() as u64;
        (mix64(key) % self.out_of as u64) < self.keep as u64
    }
}

impl Default for SampleSpec {
    fn default() -> SampleSpec {
        SampleSpec::FULL
    }
}

/// SplitMix64 finalizer: a well-mixed pure hash for stratum selection.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Fixed bucket count for every histogram sketch.
pub const SKETCH_BUCKETS: usize = 16;

/// A fixed-bucket streaming histogram over one event kind's values.
///
/// Bucket edges are fixed per kind ([`sketch_range`]) and out-of-range
/// values clamp to the edge buckets, so the sketch is a plain vector of
/// counts. The running value sum is held in fixed-point micro-units
/// (`i128`), not `f64`: integer addition is exact, so merging two
/// sketches is element-wise addition throughout — associative and
/// commutative, hence independent of worker count *and* merge order
/// (float accumulation would drift in the last ulp under re-bracketing).
#[derive(Debug, Clone, PartialEq)]
pub struct KindSketch {
    /// The aggregated kind ([`Event::kind_code`]).
    pub kind_code: u32,
    /// Inclusive lower edge of bucket 0.
    pub lo: f64,
    /// Exclusive upper edge of the last bucket (values above clamp in).
    pub hi: f64,
    /// Value counts per bucket.
    pub buckets: [u64; SKETCH_BUCKETS],
    /// Events aggregated (kept out of the sampled stream).
    pub count: u64,
    /// Of those, events that carried a finite value.
    pub valued: u64,
    /// Sum of the finite values in micro-units (value × 10⁶, rounded).
    /// Mean = `sum_micro as f64 / 1e6 / valued as f64`.
    pub sum_micro: i128,
}

impl KindSketch {
    /// An empty sketch for `kind_code`, edges from [`sketch_range`].
    pub fn new(kind_code: u32) -> KindSketch {
        let (lo, hi) = sketch_range(kind_code);
        KindSketch {
            kind_code,
            lo,
            hi,
            buckets: [0; SKETCH_BUCKETS],
            count: 0,
            valued: 0,
            sum_micro: 0,
        }
    }

    fn bucket(&self, v: f64) -> usize {
        let frac = (v - self.lo) / (self.hi - self.lo);
        let idx = (frac * SKETCH_BUCKETS as f64).floor();
        if idx < 0.0 {
            0
        } else if idx >= SKETCH_BUCKETS as f64 {
            SKETCH_BUCKETS - 1
        } else {
            idx as usize
        }
    }

    fn add_value(&mut self, v: f64) {
        if v.is_finite() {
            self.buckets[self.bucket(v)] += 1;
            self.valued += 1;
            self.sum_micro += (v * 1e6).round() as i128;
        }
    }

    /// Sum of the finite values, unquantized back to the value scale.
    pub fn sum(&self) -> f64 {
        self.sum_micro as f64 / 1e6
    }

    /// Fold `other` in (element-wise). Both sides must sketch the same
    /// kind so their bucket edges agree.
    pub fn merge(&mut self, other: &KindSketch) {
        debug_assert_eq!(self.kind_code, other.kind_code);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.valued += other.valued;
        self.sum_micro += other.sum_micro;
    }
}

/// Per-kind sketches of the events sampling dropped, indexed by kind
/// code (no hashing: emission order never matters).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SketchSet {
    kinds: Vec<Option<KindSketch>>,
}

impl SketchSet {
    /// Aggregate one dropped event.
    pub fn add(&mut self, event: &Event) {
        if self.kinds.is_empty() {
            self.kinds.resize(N_KINDS, None);
        }
        let code = event.kind_code() as usize;
        let sketch = self.kinds[code].get_or_insert_with(|| KindSketch::new(code as u32));
        sketch.count += 1;
        if let Some(v) = event.value() {
            sketch.add_value(v);
        }
    }

    /// Fold `other` in. Element-wise per kind: associative, commutative.
    pub fn merge(&mut self, other: &SketchSet) {
        if other.kinds.is_empty() {
            return;
        }
        if self.kinds.is_empty() {
            self.kinds.resize(N_KINDS, None);
        }
        for (slot, o) in self.kinds.iter_mut().zip(other.kinds.iter()) {
            if let Some(o) = o {
                match slot {
                    Some(s) => s.merge(o),
                    None => *slot = Some(o.clone()),
                }
            }
        }
    }

    /// Whether no event has been aggregated.
    pub fn is_empty(&self) -> bool {
        self.kinds.iter().all(|k| k.is_none())
    }

    /// The non-empty sketches, in kind-code order.
    pub fn iter(&self) -> impl Iterator<Item = &KindSketch> {
        self.kinds.iter().filter_map(|k| k.as_ref())
    }

    /// Serialize as JSON Lines, one sketch per kind in kind-code order,
    /// fixed field order (byte-comparable like the event stream).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in self.iter() {
            let _ = write!(
                out,
                "{{\"sketch\":\"{}\",\"count\":{},\"valued\":{},\"sum\":",
                KIND_NAMES[s.kind_code as usize], s.count, s.valued
            );
            write_f64(&mut out, s.sum());
            out.push_str(",\"lo\":");
            write_f64(&mut out, s.lo);
            out.push_str(",\"hi\":");
            write_f64(&mut out, s.hi);
            out.push_str(",\"buckets\":[");
            for (i, b) in s.buckets.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{b}");
            }
            out.push_str("]}\n");
        }
        out
    }
}

/// A bounded ring of the most recent events, full fidelity, kept even
/// when sampling drops them from the exported trace. The invariant
/// monitors dump it as `FLIGHT_<exp>.jsonl` on a violation so the ticks
/// leading up to the failure are always inspectable.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    cap: usize,
    buf: Vec<Record>,
    /// Next write position once `buf` is full.
    head: usize,
    total: u64,
}

impl FlightRecorder {
    /// A recorder keeping the last `cap` events (0 = disabled).
    pub fn with_capacity(cap: usize) -> FlightRecorder {
        FlightRecorder {
            cap,
            buf: Vec::new(),
            head: 0,
            total: 0,
        }
    }

    /// Whether the recorder is retaining events.
    pub fn is_enabled(&self) -> bool {
        self.cap > 0
    }

    /// Lifetime number of events pushed (retained or since overwritten).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Retain `r`, overwriting the oldest entry when full.
    #[inline]
    pub fn push(&mut self, r: Record) {
        if self.cap == 0 {
            return;
        }
        self.total += 1;
        if self.buf.len() < self.cap {
            self.buf.push(r);
        } else {
            self.buf[self.head] = r;
            self.head = (self.head + 1) % self.cap;
        }
    }

    /// Retained events, oldest first.
    pub fn records_in_order(&self) -> Vec<Record> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Serialize the retained ring as JSON Lines, oldest first — the
    /// `FLIGHT_<exp>.jsonl` format (same per-event schema as the trace).
    pub fn to_jsonl(&self) -> String {
        let records = self.records_in_order();
        let mut out = String::with_capacity(records.len() * 64);
        for r in &records {
            write_record(&mut out, r);
            out.push('\n');
        }
        out
    }
}

/// The trace collector an engine owns.
///
/// Disabled (the default), [`Tracer::emit`] is a single branch and the
/// backing `Vec` is never allocated. Inside parallel regions use
/// [`Tracer::fork`] to hand each entity its own [`EventSink`], then
/// [`Tracer::absorb`] the sinks back **in entity index order** — that
/// fixed merge order is the whole determinism argument.
///
/// Two optional layers ride on the emit path, both off by default:
/// a [`SampleSpec`] diverts dropped strata into [`SketchSet`] histogram
/// sketches, and a [`FlightRecorder`] ring retains the most recent
/// events at full fidelity for the invariant monitors.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    enabled: bool,
    events: Vec<Record>,
    spec: SampleSpec,
    sketches: SketchSet,
    flight: FlightRecorder,
}

impl Tracer {
    /// A tracer that records nothing and never allocates.
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// A tracer with recording on (`enabled = true`) or off.
    pub fn new(enabled: bool) -> Tracer {
        Tracer {
            enabled,
            ..Tracer::default()
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Install a sampling spec. Dropped strata aggregate into
    /// [`Tracer::sketches`]; the default [`SampleSpec::FULL`] keeps all.
    pub fn set_sample(&mut self, spec: SampleSpec) {
        self.spec = spec;
    }

    /// The active sampling spec.
    pub fn sample_spec(&self) -> SampleSpec {
        self.spec
    }

    /// Histogram sketches of the events sampling dropped.
    pub fn sketches(&self) -> &SketchSet {
        &self.sketches
    }

    /// Retain the last `cap` events in a flight-recorder ring (0 turns
    /// it off). Independent of the enabled flag: monitor-only runs keep
    /// a ring without paying for a full trace.
    pub fn enable_flight(&mut self, cap: usize) {
        self.flight = FlightRecorder::with_capacity(cap);
    }

    /// The flight-recorder ring.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Record `event` at simulation time `at`. One branch when disabled.
    #[inline]
    pub fn emit(&mut self, at: Instant, event: Event) {
        if self.enabled || self.flight.is_enabled() {
            self.record(at, event);
        }
    }

    fn record(&mut self, at: Instant, event: Event) {
        let r = Record {
            tick_us: at.as_micros(),
            event,
        };
        self.flight.push(r);
        if self.enabled {
            if self.spec.keeps(&event) {
                self.events.push(r);
            } else {
                self.sketches.add(&event);
            }
        }
    }

    /// A fresh per-entity sink sharing this tracer's enabled flag,
    /// sampling spec, and flight switch.
    pub fn fork(&self) -> EventSink {
        EventSink {
            enabled: self.enabled,
            flight_on: self.flight.is_enabled(),
            spec: self.spec,
            events: Vec::new(),
            flight_buf: Vec::new(),
            sketches: SketchSet::default(),
        }
    }

    /// Append a per-entity sink's events. Call in entity index order so
    /// the merged stream is independent of worker scheduling. (Sketches
    /// merge element-wise, so for them even the order is immaterial.)
    pub fn absorb(&mut self, sink: EventSink) {
        if self.flight.is_enabled() {
            for r in &sink.flight_buf {
                self.flight.push(*r);
            }
        }
        if self.enabled {
            self.events.extend(sink.events);
            self.sketches.merge(&sink.sketches);
        }
    }

    /// Events recorded so far.
    pub fn records(&self) -> &[Record] {
        &self.events
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drop all recorded events, keeping the enabled flag.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Serialize the trace as JSON Lines: one event object per line, in
    /// emission order, with a fixed field order — suitable for byte
    /// comparison by `trace-diff`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 64);
        for r in &self.events {
            write_record(&mut out, r);
            out.push('\n');
        }
        out
    }
}

/// A per-entity event buffer for parallel regions: rows emit into their
/// own sink (no shared state), and the caller absorbs sinks back into
/// the [`Tracer`] in entity index order after the region.
#[derive(Debug, Default)]
pub struct EventSink {
    enabled: bool,
    flight_on: bool,
    spec: SampleSpec,
    events: Vec<Record>,
    flight_buf: Vec<Record>,
    sketches: SketchSet,
}

impl EventSink {
    /// Record `event` at simulation time `at`. One branch when disabled.
    #[inline]
    pub fn emit(&mut self, at: Instant, event: Event) {
        if self.enabled || self.flight_on {
            self.record(at, event);
        }
    }

    fn record(&mut self, at: Instant, event: Event) {
        let r = Record {
            tick_us: at.as_micros(),
            event,
        };
        if self.flight_on {
            self.flight_buf.push(r);
        }
        if self.enabled {
            if self.spec.keeps(&event) {
                self.events.push(r);
            } else {
                self.sketches.add(&event);
            }
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the sink has buffered nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Write one f64 as JSON: `{}` round-trips shortest-form and is
/// deterministic; non-finite values (never expected in practice) become
/// `null` to keep the line valid JSON.
fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn write_record(out: &mut String, r: &Record) {
    let _ = write!(out, "{{\"t\":{}", r.tick_us);
    match r.event {
        Event::Hop {
            cell,
            from,
            to,
            from_utility,
            to_utility,
        } => {
            let _ = write!(
                out,
                ",\"ev\":\"hop\",\"cell\":{cell},\"from\":{from},\"to\":{to},\"from_utility\":"
            );
            write_f64(out, from_utility);
            out.push_str(",\"to_utility\":");
            write_f64(out, to_utility);
        }
        Event::Share {
            cell,
            own_active,
            heard_active,
            share,
        } => {
            let _ = write!(
                out,
                ",\"ev\":\"share\",\"cell\":{cell},\"own\":{own_active},\"heard\":{heard_active},\"share\":{share}"
            );
        }
        Event::PrachHeard { cell, ue, snr_db } => {
            let _ = write!(
                out,
                ",\"ev\":\"prach\",\"cell\":{cell},\"ue\":{ue},\"snr_db\":"
            );
            write_f64(out, snr_db);
        }
        Event::CqiInterference {
            ue,
            subchannel,
            sinr_db,
            clean_db,
        } => {
            let _ = write!(
                out,
                ",\"ev\":\"cqi_interf\",\"ue\":{ue},\"sub\":{subchannel},\"sinr_db\":"
            );
            write_f64(out, sinr_db);
            out.push_str(",\"clean_db\":");
            write_f64(out, clean_db);
        }
        Event::Pack { cell, from, to } => {
            let _ = write!(
                out,
                ",\"ev\":\"pack\",\"cell\":{cell},\"from\":{from},\"to\":{to}"
            );
        }
        Event::PawsGrant {
            channel,
            expires_us,
        } => {
            let _ = write!(
                out,
                ",\"ev\":\"paws_grant\",\"channel\":{channel},\"expires_us\":{expires_us}"
            );
        }
        Event::PawsRenew {
            channel,
            expires_us,
        } => {
            let _ = write!(
                out,
                ",\"ev\":\"paws_renew\",\"channel\":{channel},\"expires_us\":{expires_us}"
            );
        }
        Event::PawsVacate {
            channel,
            deadline_us,
        } => {
            let _ = write!(
                out,
                ",\"ev\":\"paws_vacate\",\"channel\":{channel},\"deadline_us\":{deadline_us}"
            );
        }
        Event::PawsVacated { channel, margin_us } => {
            let _ = write!(
                out,
                ",\"ev\":\"paws_vacated\",\"channel\":{channel},\"margin_us\":{margin_us}"
            );
        }
        Event::FaultInject { cell, kind } => {
            let _ = write!(
                out,
                ",\"ev\":\"fault_inject\",\"cell\":{cell},\"kind\":{kind}"
            );
        }
        Event::LeaseRenew {
            cell,
            channel,
            expires_us,
        } => {
            let _ = write!(
                out,
                ",\"ev\":\"lease_renew\",\"cell\":{cell},\"channel\":{channel},\"expires_us\":{expires_us}"
            );
        }
        Event::Degrade {
            cell,
            channel,
            step,
        } => {
            let _ = write!(
                out,
                ",\"ev\":\"degrade\",\"cell\":{cell},\"channel\":{channel},\"step\":{step}"
            );
        }
        Event::Recover { cell, channel } => {
            let _ = write!(
                out,
                ",\"ev\":\"recover\",\"cell\":{cell},\"channel\":{channel}"
            );
        }
        Event::Sched {
            cell,
            mask_bits,
            owned,
        } => {
            let _ = write!(
                out,
                ",\"ev\":\"sched\",\"cell\":{cell},\"mask\":{mask_bits},\"owned\":{owned}"
            );
        }
        Event::HarqRetx { ue, cell, process } => {
            let _ = write!(
                out,
                ",\"ev\":\"harq_retx\",\"ue\":{ue},\"cell\":{cell},\"process\":{process}"
            );
        }
        Event::Cull { ue, kept, culled } => {
            let _ = write!(
                out,
                ",\"ev\":\"cull\",\"ue\":{ue},\"kept\":{kept},\"culled\":{culled}"
            );
        }
        Event::ShardOutage { shard, until_us } => {
            let _ = write!(
                out,
                ",\"ev\":\"shard_outage\",\"shard\":{shard},\"until_us\":{until_us}"
            );
        }
        Event::CacheHit { shard, age_us } => {
            let _ = write!(
                out,
                ",\"ev\":\"cache_hit\",\"shard\":{shard},\"age_us\":{age_us}"
            );
        }
        Event::RenewBatch { shard, size } => {
            let _ = write!(
                out,
                ",\"ev\":\"renew_batch\",\"shard\":{shard},\"size\":{size}"
            );
        }
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing_and_never_allocates() {
        let mut t = Tracer::disabled();
        t.emit(
            Instant::from_millis(1),
            Event::Pack {
                cell: 0,
                from: 5,
                to: 0,
            },
        );
        assert!(t.is_empty());
        assert_eq!(t.events.capacity(), 0, "disabled emit must not allocate");
        let sink = t.fork();
        assert_eq!(sink.events.capacity(), 0);
    }

    #[test]
    fn enabled_tracer_keeps_emission_order() {
        let mut t = Tracer::new(true);
        t.emit(
            Instant::from_secs(1),
            Event::Share {
                cell: 0,
                own_active: 2,
                heard_active: 4,
                share: 6,
            },
        );
        t.emit(
            Instant::from_secs(1),
            Event::Hop {
                cell: 0,
                from: 3,
                to: 7,
                from_utility: 1.0,
                to_utility: 2.5,
            },
        );
        assert_eq!(t.len(), 2);
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"ev\":\"share\""), "{}", lines[0]);
        assert!(lines[1].contains("\"ev\":\"hop\""), "{}", lines[1]);
        assert!(lines[1].contains("\"to_utility\":2.5"), "{}", lines[1]);
    }

    #[test]
    fn sink_absorb_merges_in_call_order() {
        let mut t = Tracer::new(true);
        let mut a = t.fork();
        let mut b = t.fork();
        b.emit(
            Instant::from_millis(2),
            Event::CqiInterference {
                ue: 1,
                subchannel: 0,
                sinr_db: -3.0,
                clean_db: 20.0,
            },
        );
        a.emit(
            Instant::from_millis(2),
            Event::CqiInterference {
                ue: 0,
                subchannel: 4,
                sinr_db: 1.0,
                clean_db: 18.0,
            },
        );
        // The caller absorbs in entity index order regardless of which
        // worker finished first.
        t.absorb(a);
        t.absorb(b);
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert!(lines[0].contains("\"ue\":0"));
        assert!(lines[1].contains("\"ue\":1"));
    }

    #[test]
    fn jsonl_is_stable_across_identical_traces() {
        let build = || {
            let mut t = Tracer::new(true);
            t.emit(
                Instant::from_micros(1500),
                Event::PawsVacated {
                    channel: 21,
                    margin_us: 58_000_000,
                },
            );
            t.emit(
                Instant::from_micros(2500),
                Event::PrachHeard {
                    cell: 1,
                    ue: 9,
                    snr_db: -4.25,
                },
            );
            t.to_jsonl()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn resilience_events_serialize_with_fixed_fields() {
        let mut t = Tracer::new(true);
        t.emit(
            Instant::from_secs(3),
            Event::FaultInject { cell: 2, kind: 5 },
        );
        t.emit(
            Instant::from_secs(4),
            Event::LeaseRenew {
                cell: 2,
                channel: 44,
                expires_us: 7_200_000_000,
            },
        );
        t.emit(
            Instant::from_secs(5),
            Event::Degrade {
                cell: 2,
                channel: 45,
                step: 0,
            },
        );
        t.emit(
            Instant::from_secs(6),
            Event::Recover {
                cell: 2,
                channel: 44,
            },
        );
        let lines: Vec<String> = t.to_jsonl().lines().map(String::from).collect();
        assert_eq!(
            lines[0],
            "{\"t\":3000000,\"ev\":\"fault_inject\",\"cell\":2,\"kind\":5}"
        );
        assert_eq!(
            lines[1],
            "{\"t\":4000000,\"ev\":\"lease_renew\",\"cell\":2,\"channel\":44,\"expires_us\":7200000000}"
        );
        assert_eq!(
            lines[2],
            "{\"t\":5000000,\"ev\":\"degrade\",\"cell\":2,\"channel\":45,\"step\":0}"
        );
        assert_eq!(
            lines[3],
            "{\"t\":6000000,\"ev\":\"recover\",\"cell\":2,\"channel\":44}"
        );
    }

    #[test]
    fn non_finite_values_serialize_as_null() {
        let mut t = Tracer::new(true);
        t.emit(
            Instant::ZERO,
            Event::PrachHeard {
                cell: 0,
                ue: 0,
                snr_db: f64::NAN,
            },
        );
        assert!(t.to_jsonl().contains("\"snr_db\":null"));
    }

    fn cqi(ue: u32) -> Event {
        Event::CqiInterference {
            ue,
            subchannel: 1,
            sinr_db: -2.0,
            clean_db: 15.0,
        }
    }

    #[test]
    fn sampling_partitions_by_stratum() {
        let spec = SampleSpec::parse("1/4").expect("valid spec");
        let mut t = Tracer::new(true);
        t.set_sample(spec);
        let total = 64u32;
        for ue in 0..total {
            t.emit(Instant::from_millis(1), cqi(ue));
        }
        let kept = t.len() as u64;
        let sketched: u64 = t.sketches().iter().map(|s| s.count).sum();
        assert_eq!(kept + sketched, total as u64, "no event lost or duplicated");
        assert!(kept > 0 && sketched > 0, "1/4 spec keeps a strict subset");
        // Stratification: every kept event's stratum passes `keeps`, and
        // a repeat emission of a kept entity is kept again.
        for r in t.records() {
            assert!(spec.keeps(&r.event));
        }
    }

    #[test]
    fn sampling_decision_is_pure_and_split_invariant() {
        let spec = SampleSpec { keep: 1, out_of: 8 };
        // Emitting through one tracer or through forked sinks absorbed
        // in entity order yields byte-identical sampled streams.
        let direct = {
            let mut t = Tracer::new(true);
            t.set_sample(spec);
            for ue in 0..40 {
                t.emit(Instant::from_millis(3), cqi(ue));
            }
            t.to_jsonl()
        };
        let forked = {
            let mut t = Tracer::new(true);
            t.set_sample(spec);
            let mut sinks: Vec<EventSink> = (0..40).map(|_| t.fork()).collect();
            // Emit in reverse worker order — absorb order is what counts.
            for ue in (0..40u32).rev() {
                sinks[ue as usize].emit(Instant::from_millis(3), cqi(ue));
            }
            for s in sinks {
                t.absorb(s);
            }
            t.to_jsonl()
        };
        assert_eq!(direct, forked);
    }

    #[test]
    fn sketches_merge_associatively() {
        let events: Vec<Event> = (0..30).map(cqi).collect();
        let set = |evs: &[Event]| {
            let mut s = SketchSet::default();
            for e in evs {
                s.add(e);
            }
            s
        };
        let (a, b, c) = (set(&events[..7]), set(&events[7..19]), set(&events[19..]));
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "(a+b)+c == a+(b+c)");
        assert_eq!(ab_c.to_jsonl(), a_bc.to_jsonl());
        let merged: u64 = ab_c.iter().map(|s| s.count).sum();
        assert_eq!(merged, 30);
    }

    #[test]
    fn sketch_buckets_clamp_out_of_range_values() {
        let mut s = SketchSet::default();
        s.add(&Event::PrachHeard {
            cell: 0,
            ue: 0,
            snr_db: -500.0,
        });
        s.add(&Event::PrachHeard {
            cell: 0,
            ue: 1,
            snr_db: 500.0,
        });
        let k = s.iter().next().expect("prach sketch exists");
        assert_eq!(k.buckets[0], 1, "below-range clamps to first bucket");
        assert_eq!(
            k.buckets[SKETCH_BUCKETS - 1],
            1,
            "above-range clamps to last bucket"
        );
    }

    #[test]
    fn flight_ring_keeps_most_recent_events() {
        let mut t = Tracer::disabled();
        t.enable_flight(3);
        assert!(!t.is_enabled(), "flight works without full tracing");
        for ue in 0..5 {
            t.emit(Instant::from_millis(ue as u64), cqi(ue));
        }
        assert!(t.is_empty(), "flight never feeds the exported trace");
        let ring = t.flight().records_in_order();
        assert_eq!(ring.len(), 3);
        assert_eq!(t.flight().total(), 5);
        let ticks: Vec<u64> = ring.iter().map(|r| r.tick_us).collect();
        assert_eq!(ticks, [2000, 3000, 4000], "oldest first, last three kept");
        assert_eq!(t.flight().to_jsonl().lines().count(), 3);
    }

    #[test]
    fn flight_absorbs_sink_events() {
        let mut t = Tracer::disabled();
        t.enable_flight(8);
        let mut sink = t.fork();
        sink.emit(Instant::from_millis(1), cqi(7));
        t.absorb(sink);
        assert_eq!(t.flight().records_in_order().len(), 1);
    }

    #[test]
    fn kind_tables_are_consistent() {
        let samples = [
            Event::Hop {
                cell: 0,
                from: 0,
                to: 1,
                from_utility: 0.0,
                to_utility: 1.0,
            },
            Event::Share {
                cell: 0,
                own_active: 1,
                heard_active: 1,
                share: 1,
            },
            Event::PrachHeard {
                cell: 0,
                ue: 0,
                snr_db: 0.0,
            },
            cqi(0),
            Event::Pack {
                cell: 0,
                from: 1,
                to: 0,
            },
            Event::PawsGrant {
                channel: 21,
                expires_us: 1,
            },
            Event::PawsRenew {
                channel: 21,
                expires_us: 1,
            },
            Event::PawsVacate {
                channel: 21,
                deadline_us: 1,
            },
            Event::PawsVacated {
                channel: 21,
                margin_us: 1,
            },
            Event::FaultInject { cell: 0, kind: 0 },
            Event::LeaseRenew {
                cell: 0,
                channel: 21,
                expires_us: 1,
            },
            Event::Degrade {
                cell: 0,
                channel: 21,
                step: 0,
            },
            Event::Recover {
                cell: 0,
                channel: 21,
            },
            Event::Sched {
                cell: 0,
                mask_bits: 1,
                owned: 1,
            },
            Event::HarqRetx {
                ue: 0,
                cell: 0,
                process: 0,
            },
            Event::Cull {
                ue: 0,
                kept: 4,
                culled: 2,
            },
            Event::ShardOutage {
                shard: 0,
                until_us: 1,
            },
            Event::CacheHit {
                shard: 0,
                age_us: 1,
            },
            Event::RenewBatch { shard: 0, size: 1 },
        ];
        assert_eq!(samples.len(), N_KINDS);
        for (i, e) in samples.iter().enumerate() {
            assert_eq!(e.kind_code() as usize, i, "dense codes in variant order");
            assert_eq!(e.kind(), KIND_NAMES[i]);
            // The serialized "ev" field matches the kind table.
            let mut line = String::new();
            write_record(
                &mut line,
                &Record {
                    tick_us: 0,
                    event: *e,
                },
            );
            assert!(line.contains(&format!("\"ev\":\"{}\"", e.kind())), "{line}");
        }
    }

    #[test]
    fn clear_keeps_enabled_flag() {
        let mut t = Tracer::new(true);
        t.emit(
            Instant::ZERO,
            Event::Pack {
                cell: 0,
                from: 1,
                to: 0,
            },
        );
        t.clear();
        assert!(t.is_empty());
        assert!(t.is_enabled());
    }
}
