//! Tick-keyed structured event tracing.
//!
//! Events are typed and carry only `Copy` numeric fields, so *building*
//! an event never allocates — the only allocation on an enabled tracer
//! is the `Vec` push, and a disabled tracer costs one branch. Timestamps
//! are simulation [`Instant`]s; wall clock never appears in a trace, so
//! two runs with the same seed produce byte-identical streams regardless
//! of `CELLFI_THREADS` (the per-entity [`EventSink`] merge below is what
//! makes that hold inside parallel regions).

use cellfi_types::time::Instant;
use std::fmt::Write as _;

/// One typed observation from an engine layer.
///
/// Numbers only: entity ids are `u32` indices, times are microseconds of
/// simulation time, and dB/utility values are `f64`. String payloads are
/// deliberately impossible — they would allocate at emission time and
/// invite nondeterministic formatting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// Bucket-driven subchannel hop (§5.3) with the utilities that drove
    /// the choice: the drained subchannel's utility and the target's.
    Hop {
        /// Hopping cell.
        cell: u32,
        /// Subchannel given up.
        from: u32,
        /// Subchannel acquired instead.
        to: u32,
        /// Utility of the subchannel given up.
        from_utility: f64,
        /// Utility of the acquired subchannel (maximum over candidates).
        to_utility: f64,
    },
    /// Share recalculation from PRACH counts (§5.2): `share = max(1,
    /// floor(n_sub * own / heard))` clamped to the channel.
    Share {
        /// Recalculating cell.
        cell: u32,
        /// `N_i`: the cell's own active clients.
        own_active: u32,
        /// `NP_i`: all active clients heard via PRACH, incl. its own.
        heard_active: u32,
        /// The computed share `S_i`.
        share: u32,
    },
    /// A foreign active client's PRACH reached this cell above the
    /// −10 dB sensing threshold (§5.1).
    PrachHeard {
        /// Sensing cell.
        cell: u32,
        /// The foreign client heard.
        ue: u32,
        /// Uplink SNR of the client's PRACH at this cell.
        snr_db: f64,
    },
    /// A sub-band CQI report first flagged (ue, subchannel) as interfered
    /// this epoch: SINR fell more than the margin below the clean SNR.
    CqiInterference {
        /// Reporting client.
        ue: u32,
        /// Flagged subchannel.
        subchannel: u32,
        /// Observed SINR on the subchannel.
        sinr_db: f64,
        /// Interference-free SNR baseline on the subchannel.
        clean_db: f64,
    },
    /// Re-use packing move (§5.3): relocation toward low indices onto
    /// subchannels every recent client observed as free.
    Pack {
        /// Packing cell.
        cell: u32,
        /// Subchannel vacated.
        from: u32,
        /// Lower-indexed subchannel taken instead.
        to: u32,
    },
    /// PAWS database granted a channel lease.
    PawsGrant {
        /// Granted TVWS channel number.
        channel: u32,
        /// Lease expiry, microseconds of simulation time.
        expires_us: u64,
    },
    /// PAWS lease renewed before expiry.
    PawsRenew {
        /// Renewed TVWS channel number.
        channel: u32,
        /// New lease expiry, microseconds of simulation time.
        expires_us: u64,
    },
    /// The database withdrew the channel: vacate ordered, ETSI 60 s
    /// deadline armed.
    PawsVacate {
        /// Withdrawn TVWS channel number.
        channel: u32,
        /// Absolute vacate deadline, microseconds of simulation time.
        deadline_us: u64,
    },
    /// Transmission confirmed stopped on a withdrawn channel.
    PawsVacated {
        /// Vacated TVWS channel number.
        channel: u32,
        /// Margin left before the deadline (0 when the deadline was
        /// already missed — a compliance violation).
        margin_us: u64,
    },
    /// The fault injector perturbed a PAWS exchange for a cell's client.
    FaultInject {
        /// Affected cell (AP index).
        cell: u32,
        /// Fault kind code (`FaultKind::code()` in `cellfi-spectrum`):
        /// 0 request lost, 1 response delayed, 2 outage, 3 transient
        /// error, 4 truncated grants, 5 revocation.
        kind: u32,
    },
    /// The resilient lifecycle renewed/confirmed a cell's lease.
    LeaseRenew {
        /// Renewing cell (AP index).
        cell: u32,
        /// Confirmed TVWS channel number.
        channel: u32,
        /// New lease expiry, microseconds of simulation time.
        expires_us: u64,
    },
    /// A degradation-ladder rung fired for a cell.
    Degrade {
        /// Degrading cell (AP index).
        cell: u32,
        /// Channel after the rung (the vacated channel for a
        /// preemptive vacate).
        channel: u32,
        /// Rung code (`DegradeStep::code()`): 0 channel fallback,
        /// 1 EIRP reduction, 2 preemptive vacate.
        step: u32,
    },
    /// A cell recovered from backoff/degradation to normal operation.
    Recover {
        /// Recovering cell (AP index).
        cell: u32,
        /// Channel operating on after recovery.
        channel: u32,
    },
    /// Per-epoch scheduler occupancy decision (detail stream): the
    /// subchannel mask a cell will schedule over until the next epoch.
    Sched {
        /// Deciding cell.
        cell: u32,
        /// Bitmask of allowed subchannels (bit `s` set ⇔ subchannel `s`
        /// in the mask; grids are ≤ 32 subchannels).
        mask_bits: u32,
        /// Number of subchannels in the mask.
        owned: u32,
    },
    /// A downlink transport block failed its first decode and stays in
    /// its HARQ process for retransmission (detail stream).
    HarqRetx {
        /// Receiving client.
        ue: u32,
        /// Serving cell.
        cell: u32,
        /// HARQ process holding the block.
        process: u32,
    },
}

/// An event with the simulation tick at which it was observed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Record {
    /// Simulation time of the observation, microseconds.
    pub tick_us: u64,
    /// The observation.
    pub event: Event,
}

/// The trace collector an engine owns.
///
/// Disabled (the default), [`Tracer::emit`] is a single branch and the
/// backing `Vec` is never allocated. Inside parallel regions use
/// [`Tracer::fork`] to hand each entity its own [`EventSink`], then
/// [`Tracer::absorb`] the sinks back **in entity index order** — that
/// fixed merge order is the whole determinism argument.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    enabled: bool,
    events: Vec<Record>,
}

impl Tracer {
    /// A tracer that records nothing and never allocates.
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// A tracer with recording on (`enabled = true`) or off.
    pub fn new(enabled: bool) -> Tracer {
        Tracer {
            enabled,
            events: Vec::new(),
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record `event` at simulation time `at`. One branch when disabled.
    #[inline]
    pub fn emit(&mut self, at: Instant, event: Event) {
        if self.enabled {
            self.events.push(Record {
                tick_us: at.as_micros(),
                event,
            });
        }
    }

    /// A fresh per-entity sink sharing this tracer's enabled flag.
    pub fn fork(&self) -> EventSink {
        EventSink {
            enabled: self.enabled,
            events: Vec::new(),
        }
    }

    /// Append a per-entity sink's events. Call in entity index order so
    /// the merged stream is independent of worker scheduling.
    pub fn absorb(&mut self, sink: EventSink) {
        if self.enabled {
            self.events.extend(sink.events);
        }
    }

    /// Events recorded so far.
    pub fn records(&self) -> &[Record] {
        &self.events
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drop all recorded events, keeping the enabled flag.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Serialize the trace as JSON Lines: one event object per line, in
    /// emission order, with a fixed field order — suitable for byte
    /// comparison by `trace-diff`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 64);
        for r in &self.events {
            write_record(&mut out, r);
            out.push('\n');
        }
        out
    }
}

/// A per-entity event buffer for parallel regions: rows emit into their
/// own sink (no shared state), and the caller absorbs sinks back into
/// the [`Tracer`] in entity index order after the region.
#[derive(Debug, Default)]
pub struct EventSink {
    enabled: bool,
    events: Vec<Record>,
}

impl EventSink {
    /// Record `event` at simulation time `at`. One branch when disabled.
    #[inline]
    pub fn emit(&mut self, at: Instant, event: Event) {
        if self.enabled {
            self.events.push(Record {
                tick_us: at.as_micros(),
                event,
            });
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the sink has buffered nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Write one f64 as JSON: `{}` round-trips shortest-form and is
/// deterministic; non-finite values (never expected in practice) become
/// `null` to keep the line valid JSON.
fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn write_record(out: &mut String, r: &Record) {
    let _ = write!(out, "{{\"t\":{}", r.tick_us);
    match r.event {
        Event::Hop {
            cell,
            from,
            to,
            from_utility,
            to_utility,
        } => {
            let _ = write!(
                out,
                ",\"ev\":\"hop\",\"cell\":{cell},\"from\":{from},\"to\":{to},\"from_utility\":"
            );
            write_f64(out, from_utility);
            out.push_str(",\"to_utility\":");
            write_f64(out, to_utility);
        }
        Event::Share {
            cell,
            own_active,
            heard_active,
            share,
        } => {
            let _ = write!(
                out,
                ",\"ev\":\"share\",\"cell\":{cell},\"own\":{own_active},\"heard\":{heard_active},\"share\":{share}"
            );
        }
        Event::PrachHeard { cell, ue, snr_db } => {
            let _ = write!(
                out,
                ",\"ev\":\"prach\",\"cell\":{cell},\"ue\":{ue},\"snr_db\":"
            );
            write_f64(out, snr_db);
        }
        Event::CqiInterference {
            ue,
            subchannel,
            sinr_db,
            clean_db,
        } => {
            let _ = write!(
                out,
                ",\"ev\":\"cqi_interf\",\"ue\":{ue},\"sub\":{subchannel},\"sinr_db\":"
            );
            write_f64(out, sinr_db);
            out.push_str(",\"clean_db\":");
            write_f64(out, clean_db);
        }
        Event::Pack { cell, from, to } => {
            let _ = write!(
                out,
                ",\"ev\":\"pack\",\"cell\":{cell},\"from\":{from},\"to\":{to}"
            );
        }
        Event::PawsGrant {
            channel,
            expires_us,
        } => {
            let _ = write!(
                out,
                ",\"ev\":\"paws_grant\",\"channel\":{channel},\"expires_us\":{expires_us}"
            );
        }
        Event::PawsRenew {
            channel,
            expires_us,
        } => {
            let _ = write!(
                out,
                ",\"ev\":\"paws_renew\",\"channel\":{channel},\"expires_us\":{expires_us}"
            );
        }
        Event::PawsVacate {
            channel,
            deadline_us,
        } => {
            let _ = write!(
                out,
                ",\"ev\":\"paws_vacate\",\"channel\":{channel},\"deadline_us\":{deadline_us}"
            );
        }
        Event::PawsVacated { channel, margin_us } => {
            let _ = write!(
                out,
                ",\"ev\":\"paws_vacated\",\"channel\":{channel},\"margin_us\":{margin_us}"
            );
        }
        Event::FaultInject { cell, kind } => {
            let _ = write!(
                out,
                ",\"ev\":\"fault_inject\",\"cell\":{cell},\"kind\":{kind}"
            );
        }
        Event::LeaseRenew {
            cell,
            channel,
            expires_us,
        } => {
            let _ = write!(
                out,
                ",\"ev\":\"lease_renew\",\"cell\":{cell},\"channel\":{channel},\"expires_us\":{expires_us}"
            );
        }
        Event::Degrade {
            cell,
            channel,
            step,
        } => {
            let _ = write!(
                out,
                ",\"ev\":\"degrade\",\"cell\":{cell},\"channel\":{channel},\"step\":{step}"
            );
        }
        Event::Recover { cell, channel } => {
            let _ = write!(
                out,
                ",\"ev\":\"recover\",\"cell\":{cell},\"channel\":{channel}"
            );
        }
        Event::Sched {
            cell,
            mask_bits,
            owned,
        } => {
            let _ = write!(
                out,
                ",\"ev\":\"sched\",\"cell\":{cell},\"mask\":{mask_bits},\"owned\":{owned}"
            );
        }
        Event::HarqRetx { ue, cell, process } => {
            let _ = write!(
                out,
                ",\"ev\":\"harq_retx\",\"ue\":{ue},\"cell\":{cell},\"process\":{process}"
            );
        }
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing_and_never_allocates() {
        let mut t = Tracer::disabled();
        t.emit(
            Instant::from_millis(1),
            Event::Pack {
                cell: 0,
                from: 5,
                to: 0,
            },
        );
        assert!(t.is_empty());
        assert_eq!(t.events.capacity(), 0, "disabled emit must not allocate");
        let sink = t.fork();
        assert_eq!(sink.events.capacity(), 0);
    }

    #[test]
    fn enabled_tracer_keeps_emission_order() {
        let mut t = Tracer::new(true);
        t.emit(
            Instant::from_secs(1),
            Event::Share {
                cell: 0,
                own_active: 2,
                heard_active: 4,
                share: 6,
            },
        );
        t.emit(
            Instant::from_secs(1),
            Event::Hop {
                cell: 0,
                from: 3,
                to: 7,
                from_utility: 1.0,
                to_utility: 2.5,
            },
        );
        assert_eq!(t.len(), 2);
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"ev\":\"share\""), "{}", lines[0]);
        assert!(lines[1].contains("\"ev\":\"hop\""), "{}", lines[1]);
        assert!(lines[1].contains("\"to_utility\":2.5"), "{}", lines[1]);
    }

    #[test]
    fn sink_absorb_merges_in_call_order() {
        let mut t = Tracer::new(true);
        let mut a = t.fork();
        let mut b = t.fork();
        b.emit(
            Instant::from_millis(2),
            Event::CqiInterference {
                ue: 1,
                subchannel: 0,
                sinr_db: -3.0,
                clean_db: 20.0,
            },
        );
        a.emit(
            Instant::from_millis(2),
            Event::CqiInterference {
                ue: 0,
                subchannel: 4,
                sinr_db: 1.0,
                clean_db: 18.0,
            },
        );
        // The caller absorbs in entity index order regardless of which
        // worker finished first.
        t.absorb(a);
        t.absorb(b);
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert!(lines[0].contains("\"ue\":0"));
        assert!(lines[1].contains("\"ue\":1"));
    }

    #[test]
    fn jsonl_is_stable_across_identical_traces() {
        let build = || {
            let mut t = Tracer::new(true);
            t.emit(
                Instant::from_micros(1500),
                Event::PawsVacated {
                    channel: 21,
                    margin_us: 58_000_000,
                },
            );
            t.emit(
                Instant::from_micros(2500),
                Event::PrachHeard {
                    cell: 1,
                    ue: 9,
                    snr_db: -4.25,
                },
            );
            t.to_jsonl()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn resilience_events_serialize_with_fixed_fields() {
        let mut t = Tracer::new(true);
        t.emit(
            Instant::from_secs(3),
            Event::FaultInject { cell: 2, kind: 5 },
        );
        t.emit(
            Instant::from_secs(4),
            Event::LeaseRenew {
                cell: 2,
                channel: 44,
                expires_us: 7_200_000_000,
            },
        );
        t.emit(
            Instant::from_secs(5),
            Event::Degrade {
                cell: 2,
                channel: 45,
                step: 0,
            },
        );
        t.emit(
            Instant::from_secs(6),
            Event::Recover {
                cell: 2,
                channel: 44,
            },
        );
        let lines: Vec<String> = t.to_jsonl().lines().map(String::from).collect();
        assert_eq!(
            lines[0],
            "{\"t\":3000000,\"ev\":\"fault_inject\",\"cell\":2,\"kind\":5}"
        );
        assert_eq!(
            lines[1],
            "{\"t\":4000000,\"ev\":\"lease_renew\",\"cell\":2,\"channel\":44,\"expires_us\":7200000000}"
        );
        assert_eq!(
            lines[2],
            "{\"t\":5000000,\"ev\":\"degrade\",\"cell\":2,\"channel\":45,\"step\":0}"
        );
        assert_eq!(
            lines[3],
            "{\"t\":6000000,\"ev\":\"recover\",\"cell\":2,\"channel\":44}"
        );
    }

    #[test]
    fn non_finite_values_serialize_as_null() {
        let mut t = Tracer::new(true);
        t.emit(
            Instant::ZERO,
            Event::PrachHeard {
                cell: 0,
                ue: 0,
                snr_db: f64::NAN,
            },
        );
        assert!(t.to_jsonl().contains("\"snr_db\":null"));
    }

    #[test]
    fn clear_keeps_enabled_flag() {
        let mut t = Tracer::new(true);
        t.emit(
            Instant::ZERO,
            Event::Pack {
                cell: 0,
                from: 1,
                to: 0,
            },
        );
        t.clear();
        assert!(t.is_empty());
        assert!(t.is_enabled());
    }
}
