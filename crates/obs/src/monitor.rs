//! Online invariant monitors: deterministic per-tick checks over engine
//! facts, armed only when a run opts in (`exp --monitors`).
//!
//! Each monitor is a pure function `(facts, threshold) -> Option<value>`
//! evaluated against a [`TickFacts`] snapshot the engine assembles from
//! counters it already maintains — no allocation, no wall clock, no
//! iteration over entities, so the verdict is byte-identical for any
//! `CELLFI_THREADS` setting. A returned value is a violation: the
//! registry records the violating tick, the bin layer dumps the
//! flight-recorder ring ([`crate::trace::FlightRecorder`]) as
//! `FLIGHT_<exp>.jsonl`, and the run fails.
//!
//! The standard catalogue ([`MonitorRegistry::standard`]):
//!
//! | monitor            | invariant                                     |
//! |--------------------|-----------------------------------------------|
//! | `etsi_margin_us`   | every vacate beat its ETSI deadline (≥ 0 µs)  |
//! | `rlf_rate`         | RRC drops per UE-minute under a ceiling       |
//! | `sched_starvation` | no backlogged cell starved ≥ N whole epochs   |
//! | `cache_hit_floor`  | interference-cache hit rate above a floor     |
//!
//! Fleet runs (`exp spectrum_scale --monitors`) arm the fleet catalogue
//! ([`MonitorRegistry::fleet`]) instead:
//!
//! | monitor            | invariant                                     |
//! |--------------------|-----------------------------------------------|
//! | `etsi_margin_us`   | every vacate beat its deadline (≥ 0 µs)       |
//! | `fleet_lease_gate` | no AP transmits without a valid lease         |

/// A per-tick snapshot of the engine counters the monitors read.
///
/// All fields are running totals (or running extrema) the engine updates
/// incrementally on its hot path; assembling the snapshot is a plain
/// struct copy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickFacts {
    /// Simulation time of the snapshot, microseconds.
    pub tick_us: u64,
    /// Attached client population (rate denominators).
    pub n_ues: u32,
    /// Cumulative RRC drops (radio-link failures) since start.
    pub rlf_drops: u64,
    /// Longest current run of *whole epochs* a backlogged, unmasked,
    /// active cell went unscheduled, maximized over cells.
    pub max_starved_epochs: u32,
    /// Cumulative interference-cache subchannel probes served fresh.
    pub cache_hits: u64,
    /// Cumulative interference-cache subchannel probes recomputed.
    pub cache_misses: u64,
    /// Worst PAWS vacate margin observed so far, microseconds before
    /// the ETSI deadline (negative = deadline missed). `i64::MAX` until
    /// the first vacate completes.
    pub min_margin_us: i64,
    /// Cumulative fleet lease-gate breaches: ticks where an AP
    /// transmitted on a channel that had been ground-truth-unavailable
    /// longer than its profile's vacate deadline. Always 0 outside
    /// fleet runs.
    pub lease_gate_breaches: u64,
}

impl Default for TickFacts {
    fn default() -> TickFacts {
        TickFacts {
            tick_us: 0,
            n_ues: 0,
            rlf_drops: 0,
            max_starved_epochs: 0,
            cache_hits: 0,
            cache_misses: 0,
            min_margin_us: i64::MAX,
            lease_gate_breaches: 0,
        }
    }
}

/// One invariant check: returns the observed value when the invariant
/// is violated, `None` while it holds. Plain `fn` — checks must not
/// capture state (determinism) nor allocate (cellfi-lint rule O).
pub type Check = fn(&TickFacts, f64) -> Option<f64>;

/// A named invariant with its threshold.
#[derive(Debug, Clone, Copy)]
pub struct Monitor {
    /// Stable name, used in verdicts and `FLIGHT_<exp>` file naming.
    pub name: &'static str,
    /// The threshold the check compares against.
    pub threshold: f64,
    /// The invariant.
    pub check: Check,
}

/// A recorded invariant violation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Violation {
    /// The violated monitor's name.
    pub monitor: &'static str,
    /// Simulation tick of the first violation, microseconds.
    pub tick_us: u64,
    /// The observed value that broke the invariant.
    pub value: f64,
    /// The threshold it broke.
    pub threshold: f64,
}

/// The monitor registry an engine owns. Default is disarmed (no
/// monitors): `check_tick` is then a no-op behind one branch.
#[derive(Debug, Clone, Default)]
pub struct MonitorRegistry {
    monitors: Vec<Monitor>,
    violations: Vec<Violation>,
    checks_run: u64,
}

impl MonitorRegistry {
    /// A disarmed registry (the default).
    pub fn disabled() -> MonitorRegistry {
        MonitorRegistry::default()
    }

    /// The standard catalogue with its default thresholds (documented
    /// in EXPERIMENTS.md): ETSI margin ≥ 0 µs, RLF ceiling 30 drops per
    /// UE-minute (after 1 s warmup), starvation ceiling 5 whole epochs,
    /// interference-cache hit floor 50 % (after 1024 probes).
    pub fn standard() -> MonitorRegistry {
        let mut reg = MonitorRegistry::default();
        reg.register("etsi_margin_us", 0.0, |f, thr| {
            if f.min_margin_us == i64::MAX {
                return None;
            }
            let margin = f.min_margin_us as f64;
            if margin < thr {
                Some(margin)
            } else {
                None
            }
        });
        reg.register("rlf_rate", 30.0, |f, thr| {
            if f.tick_us < 1_000_000 || f.n_ues == 0 {
                return None;
            }
            let minutes = f.tick_us as f64 / 60e6;
            let per_ue_min = f.rlf_drops as f64 / f.n_ues as f64 / minutes;
            if per_ue_min > thr {
                Some(per_ue_min)
            } else {
                None
            }
        });
        reg.register("sched_starvation", 5.0, |f, thr| {
            let epochs = f.max_starved_epochs as f64;
            if epochs >= thr {
                Some(epochs)
            } else {
                None
            }
        });
        reg.register("cache_hit_floor", 0.5, |f, thr| {
            let probes = f.cache_hits + f.cache_misses;
            if probes < 1024 {
                return None;
            }
            let rate = f.cache_hits as f64 / probes as f64;
            if rate < thr {
                Some(rate)
            } else {
                None
            }
        });
        reg
    }

    /// The fleet catalogue for multi-tenant spectrum-manager runs
    /// (`exp spectrum_scale --monitors`): the regulatory pair that must
    /// hold fleet-wide under arbitrary per-shard fault schedules —
    /// worst vacate margin ≥ 0 µs, and zero lease-gate breaches (no AP
    /// transmits on a channel unavailable past its vacate deadline).
    pub fn fleet() -> MonitorRegistry {
        let mut reg = MonitorRegistry::default();
        reg.register("etsi_margin_us", 0.0, |f, thr| {
            if f.min_margin_us == i64::MAX {
                return None;
            }
            let margin = f.min_margin_us as f64;
            if margin < thr {
                Some(margin)
            } else {
                None
            }
        });
        reg.register("fleet_lease_gate", 0.0, |f, thr| {
            let breaches = f.lease_gate_breaches as f64;
            if breaches > thr {
                Some(breaches)
            } else {
                None
            }
        });
        reg
    }

    /// Arm an invariant. `check` runs every tick once armed; keep it
    /// allocation-free (cellfi-lint rule O scans these call sites).
    pub fn register(&mut self, name: &'static str, threshold: f64, check: Check) {
        self.monitors.push(Monitor {
            name,
            threshold,
            check,
        });
    }

    /// Whether any monitor is armed.
    pub fn is_armed(&self) -> bool {
        !self.monitors.is_empty()
    }

    /// Evaluate every armed monitor against `facts`, recording the
    /// first violation per monitor.
    pub fn check_tick(&mut self, facts: &TickFacts) {
        for m in &self.monitors {
            self.checks_run += 1;
            if self.violations.iter().any(|v| v.monitor == m.name) {
                continue;
            }
            if let Some(value) = (m.check)(facts, m.threshold) {
                self.violations.push(Violation {
                    monitor: m.name,
                    tick_us: facts.tick_us,
                    value,
                    threshold: m.threshold,
                });
            }
        }
    }

    /// Every recorded violation, in detection order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// The earliest recorded violation, if any.
    pub fn first_violation(&self) -> Option<&Violation> {
        self.violations.first()
    }

    /// Total checks evaluated (monitors × ticks).
    pub fn checks_run(&self) -> u64 {
        self.checks_run
    }

    /// One-line deterministic verdict, byte-comparable across runs:
    /// `monitors: armed=A checks=C violations=V` plus ` first=<name>@<tick>`
    /// when a violation was recorded.
    pub fn verdict_line(&self) -> String {
        let mut line = format!(
            "monitors: armed={} checks={} violations={}",
            self.monitors.len(),
            self.checks_run,
            self.violations.len()
        );
        if let Some(v) = self.first_violation() {
            line.push_str(&format!(" first={}@{}", v.monitor, v.tick_us));
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_registry_records_nothing() {
        let mut reg = MonitorRegistry::disabled();
        assert!(!reg.is_armed());
        reg.check_tick(&TickFacts::default());
        assert!(reg.violations().is_empty());
        assert_eq!(reg.checks_run(), 0);
        assert_eq!(
            reg.verdict_line(),
            "monitors: armed=0 checks=0 violations=0"
        );
    }

    #[test]
    fn standard_catalogue_holds_on_healthy_facts() {
        let mut reg = MonitorRegistry::standard();
        assert!(reg.is_armed());
        let facts = TickFacts {
            tick_us: 10_000_000,
            n_ues: 12,
            rlf_drops: 1,
            max_starved_epochs: 0,
            cache_hits: 5000,
            cache_misses: 100,
            min_margin_us: 55_000_000,
            lease_gate_breaches: 0,
        };
        reg.check_tick(&facts);
        assert!(reg.violations().is_empty(), "{:?}", reg.violations());
        assert_eq!(reg.checks_run(), 4);
    }

    #[test]
    fn fleet_catalogue_arms_two_and_gates_on_breaches() {
        let mut reg = MonitorRegistry::fleet();
        assert!(reg.is_armed());
        reg.check_tick(&TickFacts {
            tick_us: 1_000_000,
            n_ues: 64,
            min_margin_us: 12_000_000,
            ..TickFacts::default()
        });
        assert!(reg.violations().is_empty());
        assert_eq!(reg.checks_run(), 2);
        reg.check_tick(&TickFacts {
            tick_us: 2_000_000,
            n_ues: 64,
            min_margin_us: 12_000_000,
            lease_gate_breaches: 3,
            ..TickFacts::default()
        });
        let v = reg.first_violation().expect("breach always trips the gate");
        assert_eq!(v.monitor, "fleet_lease_gate");
        assert_eq!(v.value, 3.0);
        assert!(reg
            .verdict_line()
            .starts_with("monitors: armed=2 checks=4 violations=1"));
    }

    #[test]
    fn missed_etsi_deadline_fires_once_with_tick() {
        let mut reg = MonitorRegistry::standard();
        let bad = TickFacts {
            tick_us: 7_250_000,
            n_ues: 4,
            min_margin_us: -1,
            ..TickFacts::default()
        };
        reg.check_tick(&bad);
        reg.check_tick(&TickFacts {
            tick_us: 7_500_000,
            ..bad
        });
        let v: Vec<&Violation> = reg
            .violations()
            .iter()
            .filter(|v| v.monitor == "etsi_margin_us")
            .collect();
        assert_eq!(v.len(), 1, "first violation only");
        assert_eq!(v[0].tick_us, 7_250_000);
        assert_eq!(v[0].value, -1.0);
        assert!(reg.verdict_line().contains("first=etsi_margin_us@7250000"));
    }

    #[test]
    fn unvacated_run_never_trips_the_margin_monitor() {
        let mut reg = MonitorRegistry::standard();
        reg.check_tick(&TickFacts {
            tick_us: 1,
            n_ues: 1,
            ..TickFacts::default()
        });
        assert!(reg.violations().is_empty());
    }

    #[test]
    fn cache_floor_gated_by_minimum_probes() {
        let mut reg = MonitorRegistry::standard();
        let cold = TickFacts {
            tick_us: 5_000_000,
            n_ues: 1,
            cache_hits: 0,
            cache_misses: 500,
            ..TickFacts::default()
        };
        reg.check_tick(&cold);
        assert!(reg.violations().is_empty(), "under 1024 probes: no check");
        let warm = TickFacts {
            cache_misses: 2000,
            ..cold
        };
        reg.check_tick(&warm);
        assert_eq!(
            reg.first_violation().map(|v| v.monitor),
            Some("cache_hit_floor")
        );
    }

    #[test]
    fn starvation_ceiling_uses_whole_epochs() {
        let mut reg = MonitorRegistry::standard();
        reg.check_tick(&TickFacts {
            tick_us: 2_000_000,
            n_ues: 1,
            max_starved_epochs: 4,
            ..TickFacts::default()
        });
        assert!(reg.violations().is_empty());
        reg.check_tick(&TickFacts {
            tick_us: 2_200_000,
            n_ues: 1,
            max_starved_epochs: 5,
            ..TickFacts::default()
        });
        assert_eq!(
            reg.first_violation().map(|v| v.monitor),
            Some("sched_starvation")
        );
    }

    #[test]
    fn rlf_ceiling_scales_by_population_and_time() {
        let mut reg = MonitorRegistry::standard();
        // 100 drops over 2 s across 2 UEs = 1500 drops/UE-minute.
        reg.check_tick(&TickFacts {
            tick_us: 2_000_000,
            n_ues: 2,
            rlf_drops: 100,
            ..TickFacts::default()
        });
        let v = reg.first_violation().expect("ceiling exceeded");
        assert_eq!(v.monitor, "rlf_rate");
        assert!((v.value - 1500.0).abs() < 1e-9);
    }
}
