//! # cellfi-wifi
//!
//! The 802.11ac / 802.11af comparison baseline (paper §3.2, Fig 2,
//! Fig 9). The paper simulated these in ns-3 ("we simulate 802.11af by
//! adjusting the standard 802.11ac PHY and MAC layer in ns3 to match the
//! 802.11af specs"); this crate is our own implementation of the same
//! mechanisms:
//!
//! * [`phy`] — VHT MCS tables for 802.11ac (20 MHz) and 802.11af (6/8 MHz
//!   TVHT, down-clocked), ideal SINR-based rate adaptation, frame
//!   durations. The 802.11 minimum code rate of 1/2 — half of the
//!   paper's coverage argument — is visible right in the table.
//! * [`sim`] — a slotted CSMA/CA DCF simulator: DIFS + binary exponential
//!   backoff, energy-detect carrier sensing, optional RTS/CTS with NAV,
//!   A-MPDU aggregation to 65 KB, per-receiver SINR collision
//!   resolution, and propagation-delay-widened vulnerability windows (the
//!   long-link effect that makes CSMA expensive outdoors).
//!
//! Hidden and exposed terminals are *not* modelled explicitly — they
//! emerge from the carrier-sense vs interference footprint mismatch,
//! exactly as in reality.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod phy;
pub mod sim;

pub use phy::{McsTable, WifiBand};
pub use sim::{WifiConfig, WifiSimulator, WifiStats};
