//! The slotted CSMA/CA (DCF) simulator.
//!
//! A discrete-time model of the 802.11 distributed coordination function
//! at 9 µs slot granularity, covering everything the paper's Wi-Fi
//! arguments rest on (§3.2):
//!
//! * **DIFS + binary exponential backoff** — the per-access channel
//!   acquisition overhead that long-range networks cannot amortize;
//! * **energy-detect carrier sensing** on mean received power, so the
//!   carrier-sense footprint and the interference footprint diverge with
//!   the path-loss exponent — hidden and exposed terminals *emerge*;
//! * **propagation delay** — a transmission is sensed only after its
//!   wavefront arrives, widening the collision window on km links;
//! * **RTS/CTS with NAV** — clients' CTS silences hidden access points
//!   within energy-detect range of the *client*;
//! * **A-MPDU aggregation** up to 65 KB per exchange (§6.3.4), capped at
//!   the 4 ms TXOP of Table 1;
//! * **per-receiver SINR collision resolution** — overlapping frames are
//!   not automatically lost; capture happens when SINR still clears the
//!   MCS threshold.
//!
//! Simplifications (documented in DESIGN.md): CTS/ACK transmissions are
//! modelled through NAV and assumed decodable when the frame they answer
//! was; downlink traffic only (as in the paper's evaluation).

use crate::phy::{Mcs, McsTable, WifiBand};
use cellfi_propagation::link::{LinkEnd, Transmission};
use cellfi_propagation::RadioEnvironment;
use cellfi_types::time::{Duration, Instant};
use cellfi_types::units::Dbm;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// DCF configuration.
#[derive(Debug, Clone, Copy)]
pub struct WifiConfig {
    /// PHY band.
    pub band: WifiBand,
    /// Slot time (9 µs in 802.11ac; kept for 802.11af).
    pub slot: Duration,
    /// SIFS.
    pub sifs: Duration,
    /// Minimum contention window (slots).
    pub cw_min: u32,
    /// Maximum contention window (slots).
    pub cw_max: u32,
    /// Enable RTS/CTS ("we use RTS/CTS as we have observed that it
    /// improves performance", §3.2).
    pub rts_cts: bool,
    /// A-MPDU cap in bytes (65 KB, §6.3.4).
    pub max_ampdu_bytes: usize,
    /// TXOP cap (Table 1: "up to 4 ms").
    pub max_tx_duration: Duration,
    /// Energy-detect carrier-sense threshold.
    pub cs_threshold: Dbm,
    /// Retry limit before an aggregate is dropped.
    pub retry_limit: u32,
    /// Client (station) transmit power for CTS/ACK. The paper's Wi-Fi
    /// RF settings use 30 dBm for both AP and client (§6.3.4).
    pub client_power: Dbm,
    /// When true, an aggregate that exhausts its MAC retries stays queued
    /// (the transport layer retransmits it); when false it is discarded.
    /// Web-workload experiments model TCP and set this.
    pub persistent_retry: bool,
    /// Preamble-capture margin: a reception is lost when any overlapping
    /// interferer arrives within this many dB of the signal, even if the
    /// aggregate SINR would clear the MCS threshold. Real receivers lose
    /// sync when a comparable-power frame lands mid-reception (ns-3, the
    /// paper's simulator, models no capture at all). 0 disables the rule
    /// (pure SINR capture).
    pub capture_margin_db: f64,
}

impl WifiConfig {
    /// The paper's 802.11af setup: 6 MHz, RTS/CTS on, 65 KB A-MPDU.
    pub fn af_default() -> WifiConfig {
        WifiConfig {
            band: WifiBand::Af6,
            slot: Duration::from_micros(9),
            sifs: Duration::from_micros(16),
            cw_min: 15,
            cw_max: 1023,
            rts_cts: true,
            max_ampdu_bytes: 65_535,
            max_tx_duration: Duration::from_millis(4),
            // Preamble-detect sensitivity: a long-range deployment hears
            // preambles close to the noise floor, not the −82 dBm minimum
            // the standard mandates for 20 MHz.
            cs_threshold: Dbm(-92.0),
            retry_limit: 7,
            client_power: Dbm(30.0),
            persistent_retry: false,
            capture_margin_db: 10.0,
        }
    }

    /// The 802.11ac home-Wi-Fi baseline of Fig 2.
    pub fn ac_default() -> WifiConfig {
        WifiConfig {
            band: WifiBand::Ac20,
            ..WifiConfig::af_default()
        }
    }

    /// DIFS = SIFS + 2 slots.
    pub fn difs_slots(&self) -> u64 {
        // Rounded up to whole slots for the slotted model.
        let difs = self.sifs + self.slot * 2;
        difs.as_micros().div_ceil(self.slot.as_micros())
    }
}

/// Phase of an in-flight exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// RTS in the air; checkpoint at its end decides CTS.
    Rts,
    /// Data in the air; checkpoint at its end decides delivery.
    Data,
}

/// An in-flight frame exchange from one AP to one station.
#[derive(Debug, Clone)]
struct Exchange {
    ap: usize,
    sta: usize,
    bytes: usize,
    mcs: Mcs,
    phase: Phase,
    /// Slot the current phase's airtime started.
    phase_start: u64,
    /// Slot the current phase's airtime ends (checkpoint).
    phase_end: u64,
    /// Slot the whole exchange will end if successful (for NAV).
    exchange_end: u64,
}

/// Radiated interval kept for SINR evaluation of overlapping receptions.
#[derive(Debug, Clone, Copy)]
struct AirInterval {
    node: u32,
    power: Dbm,
    start: u64,
    end: u64,
}

/// Per-AP MAC state.
#[derive(Debug, Clone)]
struct ApMac {
    backoff: u64,
    cw: u32,
    retries: u32,
    idle_streak: u64,
    nav_until: u64,
    /// Next station index (into this AP's station list) for round-robin.
    rr: usize,
    /// Currently transmitting until this slot (busy lockout).
    busy_until: u64,
    /// Pending retry of a failed aggregate (sta, bytes).
    pending: Option<(usize, usize)>,
}

/// Counters reported by the simulator.
#[derive(Debug, Clone, Default)]
pub struct WifiStats {
    /// Bytes delivered per station.
    pub delivered_bytes: Vec<u64>,
    /// Exchange attempts per AP.
    pub attempts: Vec<u64>,
    /// Failed exchanges (RTS or data lost) per AP.
    pub failures: Vec<u64>,
    /// Aggregates dropped after the retry limit, per AP.
    pub drops: Vec<u64>,
}

/// The DCF simulator.
#[derive(Debug)]
pub struct WifiSimulator {
    env: RadioEnvironment,
    config: WifiConfig,
    table: McsTable,
    aps: Vec<LinkEnd>,
    ap_power: Dbm,
    stas: Vec<LinkEnd>,
    /// Station → serving AP index.
    assoc: Vec<usize>,
    /// Downlink queue per station, bytes.
    queue: Vec<u64>,
    macs: Vec<ApMac>,
    exchanges: Vec<Exchange>,
    air: Vec<AirInterval>,
    stats: WifiStats,
    slot_now: u64,
    rng: StdRng,
    /// Cached per-station MCS ceiling from mean SNR (`None` = unreachable).
    sta_mcs: Vec<Option<Mcs>>,
    /// Outer-loop rate adaptation: how many MCS steps below the SNR
    /// ceiling each station currently runs (stepped up on loss, back
    /// down after consecutive successes — Minstrel-style).
    mcs_backoff: Vec<u8>,
    /// Consecutive data successes per station (drives step-up).
    success_streak: Vec<u8>,
}

/// Consecutive successes before the rate adapter probes one MCS up.
const RATE_UP_STREAK: u8 = 10;

impl WifiSimulator {
    /// Build a simulator over fixed topology and association.
    pub fn new(
        env: RadioEnvironment,
        config: WifiConfig,
        aps: Vec<LinkEnd>,
        ap_power: Dbm,
        stas: Vec<LinkEnd>,
        assoc: Vec<usize>,
        seed: u64,
    ) -> WifiSimulator {
        assert_eq!(stas.len(), assoc.len(), "one association per station");
        assert!(
            assoc.iter().all(|&a| a < aps.len()),
            "association out of range"
        );
        let table = McsTable::new(config.band);
        let sta_mcs: Vec<Option<Mcs>> = stas
            .iter()
            .zip(&assoc)
            .map(|(sta, &ap)| {
                let snr = env.mean_snr(&aps[ap], ap_power, sta, table.bandwidth());
                table.select(snr).copied()
            })
            .collect();
        let n_ap = aps.len();
        let n_sta = stas.len();
        let mut rng = StdRng::seed_from_u64(seed);
        let macs = (0..n_ap)
            .map(|_| ApMac {
                backoff: u64::from(rng.gen_range(0..=15u32)),
                cw: config.cw_min,
                retries: 0,
                idle_streak: 0,
                nav_until: 0,
                rr: 0,
                busy_until: 0,
                pending: None,
            })
            .collect();
        WifiSimulator {
            env,
            config,
            table,
            aps,
            ap_power,
            stas,
            assoc,
            queue: vec![0; n_sta],
            macs,
            exchanges: Vec::new(),
            air: Vec::new(),
            stats: WifiStats {
                delivered_bytes: vec![0; n_sta],
                attempts: vec![0; n_ap],
                failures: vec![0; n_ap],
                drops: vec![0; n_ap],
            },
            slot_now: 0,
            rng,
            sta_mcs,
            mcs_backoff: vec![0; n_sta],
            success_streak: vec![0; n_sta],
        }
    }

    /// The MCS the rate adapter currently uses for a station: the mean-SNR
    /// ceiling minus the outer-loop backoff.
    fn current_mcs(&self, sta: usize) -> Option<Mcs> {
        let ceiling = self.sta_mcs[sta]?;
        let idx = ceiling.index.saturating_sub(self.mcs_backoff[sta]);
        Some(self.table.entries()[idx as usize])
    }

    /// Enqueue downlink bytes for a station.
    pub fn enqueue(&mut self, sta: usize, bytes: u64) {
        self.queue[sta] += bytes;
    }

    /// Stats so far.
    pub fn stats(&self) -> &WifiStats {
        &self.stats
    }

    /// Bytes still queued for a station.
    pub fn queued(&self, sta: usize) -> u64 {
        self.queue[sta]
    }

    /// Whether the station can be served at all (mean SNR ≥ MCS 0).
    pub fn reachable(&self, sta: usize) -> bool {
        self.sta_mcs[sta].is_some()
    }

    /// Current simulation time.
    pub fn now(&self) -> Instant {
        Instant::from_micros(self.slot_now * self.config.slot.as_micros())
    }

    fn slots_of(&self, d: Duration) -> u64 {
        d.as_micros().div_ceil(self.config.slot.as_micros()).max(1)
    }

    /// Largest A-MPDU payload that fits the TXOP cap at `mcs` (Table 1:
    /// 802.11af transmissions last at most ~4 ms).
    fn max_bytes_in_txop(&self, mcs: &Mcs) -> usize {
        let usable = self
            .config
            .max_tx_duration
            .saturating_sub(self.table.preamble());
        let symbols = usable.as_micros() / self.table.symbol_duration().as_micros();
        let bits_per_symbol =
            f64::from(self.table.data_subcarriers()) * f64::from(mcs.bits) * mcs.code_rate;
        ((symbols as f64 * bits_per_symbol / 8.0) as usize).max(1)
    }

    /// Propagation delay between two ends, in whole slots (floor — a
    /// same-slot arrival still occupies that slot).
    fn delay_slots(&self, a: &LinkEnd, b: &LinkEnd) -> u64 {
        let d = a.position.distance(b.position).value();
        let us = d / 299.792_458; // metres per µs of light travel
        (us / self.config.slot.as_micros() as f64).floor() as u64
    }

    /// Energy-detect: is the medium busy at `ap_idx` this slot?
    fn medium_busy(&self, ap_idx: usize) -> bool {
        let me = &self.aps[ap_idx];
        for iv in &self.air {
            if iv.node == me.node {
                continue;
            }
            let src = self.find_end(iv.node);
            let delay = self.delay_slots(src, me);
            if self.slot_now >= iv.start + delay && self.slot_now < iv.end + delay {
                let p = self.env.mean_rx_power(src, iv.power, me);
                if p.value() >= self.config.cs_threshold.value() {
                    return true;
                }
            }
        }
        false
    }

    fn find_end(&self, node: u32) -> &LinkEnd {
        self.aps
            .iter()
            .chain(self.stas.iter())
            .find(|e| e.node == node)
            .expect("node key registered")
    }

    /// Strongest overlapping interferer's mean rx power (dBm) at a
    /// station for a window, or None when the window is clean.
    fn strongest_interferer_dbm(&self, ap: usize, sta: usize, start: u64, end: u64) -> Option<f64> {
        self.air
            .iter()
            .filter(|iv| iv.node != self.aps[ap].node && iv.start < end && iv.end > start)
            .map(|iv| {
                self.env
                    .mean_rx_power(self.find_end(iv.node), iv.power, &self.stas[sta])
                    .value()
            })
            .fold(None, |acc: Option<f64>, p| {
                Some(acc.map_or(p, |a| a.max(p)))
            })
    }

    /// Whether the receiver can hold sync on the frame: no overlapping
    /// interferer within the capture margin of the signal.
    fn window_captured(&self, ap: usize, sta: usize, start: u64, end: u64) -> bool {
        if self.config.capture_margin_db <= 0.0 {
            return true;
        }
        let signal = self
            .env
            .mean_rx_power(&self.aps[ap], self.ap_power, &self.stas[sta])
            .value();
        match self.strongest_interferer_dbm(ap, sta, start, end) {
            Some(i) => signal - i >= self.config.capture_margin_db,
            None => true,
        }
    }

    /// SINR at a station for a window, against all other radiated
    /// intervals overlapping it.
    fn window_sinr(&self, ap: usize, sta: usize, start: u64, end: u64) -> f64 {
        let serving = Transmission {
            from: self.aps[ap],
            power: self.ap_power,
        };
        let interferers: Vec<Transmission> = self
            .air
            .iter()
            .filter(|iv| iv.node != self.aps[ap].node && iv.start < end && iv.end > start)
            .map(|iv| Transmission {
                from: *self.find_end(iv.node),
                power: iv.power,
            })
            .collect();
        // Wi-Fi transmissions span the whole channel: use subchannel 0 of
        // the fading process as the common wideband realization.
        self.env
            .subchannel_sinr(
                &serving,
                &self.stas[sta],
                &interferers,
                cellfi_types::SubchannelId::new(0),
                self.now(),
                self.table.bandwidth(),
            )
            .value()
    }

    /// Pick the next backlogged, reachable station of an AP (round-robin).
    fn next_sta(&mut self, ap: usize) -> Option<usize> {
        let mine: Vec<usize> = (0..self.stas.len())
            .filter(|&s| self.assoc[s] == ap)
            .collect();
        if mine.is_empty() {
            return None;
        }
        let start = self.macs[ap].rr;
        for k in 0..mine.len() {
            let s = mine[(start + k) % mine.len()];
            if self.queue[s] > 0 && self.sta_mcs[s].is_some() {
                self.macs[ap].rr = (start + k + 1) % mine.len();
                return Some(s);
            }
        }
        None
    }

    fn draw_backoff(&mut self, cw: u32) -> u64 {
        u64::from(self.rng.gen_range(0..=cw))
    }

    /// Begin an exchange at the current slot.
    fn start_exchange(&mut self, ap: usize, sta: usize, bytes: usize) {
        let mcs = self.current_mcs(sta).expect("reachable station");
        let data_slots = {
            let d = self
                .table
                .frame_duration(bytes, &mcs)
                .min(self.config.max_tx_duration);
            self.slots_of(d)
        };
        let sifs_slots = self.slots_of(self.config.sifs);
        let ctrl_slots = self.slots_of(self.table.control_duration(20));
        let (phase, phase_end, exchange_end) = if self.config.rts_cts {
            let rts_end = self.slot_now + ctrl_slots;
            let end = rts_end
                + sifs_slots
                + ctrl_slots
                + sifs_slots
                + data_slots
                + sifs_slots
                + ctrl_slots;
            (Phase::Rts, rts_end, end)
        } else {
            let data_end = self.slot_now + data_slots;
            (Phase::Data, data_end, data_end + sifs_slots + ctrl_slots)
        };
        self.stats.attempts[ap] += 1;
        // The AP radiates from now to the end of its data portion.
        self.air.push(AirInterval {
            node: self.aps[ap].node,
            power: self.ap_power,
            start: self.slot_now,
            end: exchange_end,
        });
        self.macs[ap].busy_until = exchange_end;
        self.exchanges.push(Exchange {
            ap,
            sta,
            bytes,
            mcs,
            phase,
            phase_start: self.slot_now,
            phase_end,
            exchange_end,
        });
    }

    /// Handle a failed exchange: exponential backoff, retry or drop.
    fn fail_exchange(&mut self, ap: usize, sta: usize, bytes: usize) {
        self.stats.failures[ap] += 1;
        let mac = &mut self.macs[ap];
        mac.retries += 1;
        if mac.retries > self.config.retry_limit {
            self.stats.drops[ap] += 1;
            if !self.config.persistent_retry {
                self.queue[sta] = self.queue[sta].saturating_sub(bytes as u64);
            }
            mac.retries = 0;
            mac.cw = self.config.cw_min;
            mac.pending = None;
        } else {
            mac.cw = (mac.cw * 2 + 1).min(self.config.cw_max);
            mac.pending = Some((sta, bytes));
        }
        let cw = self.macs[ap].cw;
        self.macs[ap].backoff = self.draw_backoff(cw);
        self.macs[ap].idle_streak = 0;
    }

    /// Resolve exchange checkpoints due at the current slot.
    fn resolve_checkpoints(&mut self) {
        let due: Vec<usize> = self
            .exchanges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.phase_end == self.slot_now)
            .map(|(i, _)| i)
            .collect();
        // Process in reverse index order so removals stay valid.
        for &i in due.iter().rev() {
            let e = self.exchanges[i].clone();
            match e.phase {
                Phase::Rts => {
                    let sinr = self.window_sinr(e.ap, e.sta, e.phase_start, e.phase_end);
                    let base_thr = self.table.entries()[0].sinr_threshold.value();
                    let ok = sinr >= base_thr
                        && self.window_captured(e.ap, e.sta, e.phase_start, e.phase_end);
                    if ok {
                        // CTS: set NAV at every AP that hears the station.
                        let sta_end = self.stas[e.sta];
                        for a in 0..self.aps.len() {
                            if a == e.ap {
                                continue;
                            }
                            let p = self.env.mean_rx_power(
                                &sta_end,
                                self.config.client_power,
                                &self.aps[a],
                            );
                            if p.value() >= self.config.cs_threshold.value() {
                                self.macs[a].nav_until = self.macs[a].nav_until.max(e.exchange_end);
                            }
                        }
                        // Advance to the data phase.
                        let sifs = self.slots_of(self.config.sifs);
                        let ctrl = self.slots_of(self.table.control_duration(20));
                        let data_slots =
                            e.exchange_end - (e.phase_end + sifs + ctrl + sifs) - (sifs + ctrl);
                        let ex = &mut self.exchanges[i];
                        ex.phase = Phase::Data;
                        ex.phase_start = e.phase_end + sifs + ctrl + sifs;
                        ex.phase_end = ex.phase_start + data_slots;
                    } else {
                        // No CTS: abort, free the medium early.
                        self.truncate_air(self.aps[e.ap].node, self.slot_now);
                        self.macs[e.ap].busy_until = self.slot_now;
                        self.exchanges.remove(i);
                        self.fail_exchange(e.ap, e.sta, e.bytes);
                    }
                }
                Phase::Data => {
                    let sinr = self.window_sinr(e.ap, e.sta, e.phase_start, e.phase_end);
                    let captured = self.window_captured(e.ap, e.sta, e.phase_start, e.phase_end);
                    self.exchanges.remove(i);
                    if sinr >= e.mcs.sinr_threshold.value() && captured {
                        let drained = (e.bytes as u64).min(self.queue[e.sta]);
                        self.queue[e.sta] -= drained;
                        self.stats.delivered_bytes[e.sta] += drained;
                        // Rate adapter: probe one MCS up after a clean run.
                        self.success_streak[e.sta] = self.success_streak[e.sta].saturating_add(1);
                        if self.success_streak[e.sta] >= RATE_UP_STREAK
                            && self.mcs_backoff[e.sta] > 0
                        {
                            self.mcs_backoff[e.sta] -= 1;
                            self.success_streak[e.sta] = 0;
                        }
                        let mac = &mut self.macs[e.ap];
                        mac.retries = 0;
                        mac.cw = self.config.cw_min;
                        mac.pending = None;
                        let cw = self.macs[e.ap].cw;
                        self.macs[e.ap].backoff = self.draw_backoff(cw);
                        self.macs[e.ap].idle_streak = 0;
                    } else {
                        // Rate adapter: step down towards MCS 0 on loss.
                        self.success_streak[e.sta] = 0;
                        if let Some(ceiling) = self.sta_mcs[e.sta] {
                            if self.mcs_backoff[e.sta] < ceiling.index {
                                self.mcs_backoff[e.sta] += 1;
                            }
                        }
                        self.fail_exchange(e.ap, e.sta, e.bytes);
                    }
                }
            }
        }
    }

    fn truncate_air(&mut self, node: u32, at: u64) {
        for iv in self.air.iter_mut() {
            if iv.node == node && iv.end > at && iv.start <= at {
                iv.end = at;
            }
        }
    }

    /// Drop air intervals that can no longer affect anything.
    fn compact_air(&mut self) {
        // Max propagation delay in this model is well under 64 slots.
        let horizon = self.slot_now.saturating_sub(64);
        self.air.retain(|iv| iv.end >= horizon);
    }

    /// Advance one slot.
    fn step_slot(&mut self) {
        self.slot_now += 1;
        self.resolve_checkpoints();
        let difs = self.config.difs_slots();
        for ap in 0..self.aps.len() {
            if self.macs[ap].busy_until > self.slot_now {
                continue; // transmitting
            }
            if self.macs[ap].nav_until > self.slot_now {
                self.macs[ap].idle_streak = 0;
                continue; // deferring to NAV
            }
            // Anything to send?
            let work = match self.macs[ap].pending {
                Some((sta, bytes)) => Some((sta, bytes)),
                None => self.next_sta(ap).map(|sta| {
                    let mcs = self.current_mcs(sta).expect("next_sta is reachable");
                    let cap = self
                        .config
                        .max_ampdu_bytes
                        .min(self.max_bytes_in_txop(&mcs));
                    let bytes = (self.queue[sta].min(cap as u64)) as usize;
                    (sta, bytes)
                }),
            };
            let Some((sta, bytes)) = work else { continue };
            if bytes == 0 {
                continue;
            }
            if self.macs[ap].pending.is_none() {
                self.macs[ap].pending = Some((sta, bytes));
            }
            if self.medium_busy(ap) {
                self.macs[ap].idle_streak = 0;
                continue;
            }
            self.macs[ap].idle_streak += 1;
            if self.macs[ap].idle_streak <= difs {
                continue; // still in DIFS
            }
            if self.macs[ap].backoff > 0 {
                self.macs[ap].backoff -= 1;
                continue;
            }
            // Backoff expired on an idle slot: transmit.
            let (sta, bytes) = self.macs[ap].pending.take().expect("work staged");
            self.macs[ap].pending = Some((sta, bytes)); // kept until success/drop
            self.start_exchange(ap, sta, bytes);
        }
        if self.slot_now.is_multiple_of(1024) {
            self.compact_air();
        }
    }

    /// Run the simulator until `t`.
    pub fn run_until(&mut self, t: Instant) {
        let target = t.as_micros() / self.config.slot.as_micros();
        while self.slot_now < target {
            self.step_slot();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellfi_propagation::antenna::Antenna;
    use cellfi_propagation::fading::BlockFading;
    use cellfi_propagation::noise::NoiseModel;
    use cellfi_propagation::pathloss::PathLossModel;
    use cellfi_propagation::shadowing::Shadowing;
    use cellfi_types::geo::Point;
    use cellfi_types::rng::SeedSeq;
    use cellfi_types::units::{Db, Hertz};

    fn env() -> RadioEnvironment {
        let seeds = SeedSeq::new(21);
        RadioEnvironment {
            pathloss: PathLossModel::tvws_urban(),
            shadowing: Shadowing::disabled(seeds),
            fading: BlockFading::disabled(seeds),
            noise: NoiseModel::typical(),
            frequency: Hertz(700e6),
        }
    }

    fn ap(node: u32, x: f64) -> LinkEnd {
        LinkEnd::new(
            node,
            Point::new(x, 0.0),
            Antenna::Isotropic { gain: Db(6.0) },
        )
    }

    fn sta(node: u32, x: f64, y: f64) -> LinkEnd {
        LinkEnd::new(node, Point::new(x, y), Antenna::client())
    }

    fn single_cell(rts: bool) -> WifiSimulator {
        let cfg = WifiConfig {
            rts_cts: rts,
            ..WifiConfig::af_default()
        };
        WifiSimulator::new(
            env(),
            cfg,
            vec![ap(0, 0.0)],
            Dbm(30.0),
            vec![sta(100, 200.0, 0.0)],
            vec![0],
            1,
        )
    }

    #[test]
    fn lone_link_delivers_all_traffic() {
        let mut sim = single_cell(true);
        sim.enqueue(0, 200_000);
        sim.run_until(Instant::from_millis(500));
        assert_eq!(sim.stats().delivered_bytes[0], 200_000);
        assert_eq!(sim.queued(0), 0);
        assert_eq!(sim.stats().failures[0], 0);
    }

    #[test]
    fn throughput_bounded_by_phy_rate() {
        let mut sim = single_cell(false);
        sim.enqueue(0, 100_000_000);
        sim.run_until(Instant::from_secs(1));
        let bits = sim.stats().delivered_bytes[0] as f64 * 8.0;
        // 6 MHz af peak is ~27 Mbps; MAC overhead must keep goodput below.
        assert!(bits < 27e6, "goodput {bits} above PHY peak");
        assert!(bits > 5e6, "goodput {bits} implausibly low for a lone link");
    }

    #[test]
    fn rts_cts_costs_airtime_on_a_clean_link() {
        let mut with = single_cell(true);
        let mut without = single_cell(false);
        with.enqueue(0, 100_000_000);
        without.enqueue(0, 100_000_000);
        with.run_until(Instant::from_secs(1));
        without.run_until(Instant::from_secs(1));
        assert!(
            without.stats().delivered_bytes[0] > with.stats().delivered_bytes[0],
            "RTS/CTS should cost throughput without contention"
        );
    }

    #[test]
    fn unreachable_station_gets_nothing() {
        let mut sim = WifiSimulator::new(
            env(),
            WifiConfig::af_default(),
            vec![ap(0, 0.0)],
            Dbm(30.0),
            vec![sta(100, 5_000.0, 0.0)], // way past MCS0 range
            vec![0],
            1,
        );
        assert!(!sim.reachable(0));
        sim.enqueue(0, 10_000);
        sim.run_until(Instant::from_millis(200));
        assert_eq!(sim.stats().delivered_bytes[0], 0);
        assert_eq!(sim.stats().attempts[0], 0);
    }

    #[test]
    fn co_located_aps_share_via_carrier_sense() {
        // Two APs in CS range with one client each: both should get
        // roughly half, nobody starves.
        let mut sim = WifiSimulator::new(
            env(),
            WifiConfig::af_default(),
            vec![ap(0, 0.0), ap(1, 300.0)],
            Dbm(30.0),
            vec![sta(100, 50.0, 100.0), sta(101, 250.0, 100.0)],
            vec![0, 1],
            3,
        );
        sim.enqueue(0, 50_000_000);
        sim.enqueue(1, 50_000_000);
        sim.run_until(Instant::from_secs(1));
        let a = sim.stats().delivered_bytes[0] as f64;
        let b = sim.stats().delivered_bytes[1] as f64;
        assert!(a > 0.0 && b > 0.0, "starvation: {a} {b}");
        let ratio = a.max(b) / a.min(b);
        assert!(ratio < 3.0, "unfair split {a} vs {b}");
        // And the shared medium halves each AP's throughput vs alone.
        let mut solo = single_cell(true);
        solo.enqueue(0, 50_000_000);
        solo.run_until(Instant::from_secs(1));
        let solo_bytes = solo.stats().delivered_bytes[0] as f64;
        assert!(a < 0.8 * solo_bytes, "no contention visible");
    }

    #[test]
    fn hidden_terminals_collide_without_rts() {
        // Two APs far outside each other's CS range, both serving clients
        // in the middle: without RTS/CTS the middle is a collision zone.
        let cfg = WifiConfig {
            rts_cts: false,
            ..WifiConfig::af_default()
        };
        let mut sim = WifiSimulator::new(
            env(),
            cfg,
            // APs 1.11 km apart: mutual power below carrier sense (CS
            // range ≈ 1.10 km at these powers), so they cannot hear each
            // other. AP0's client at 400 m decodes at MCS 4, but AP1's
            // signal reaches it 8 dB above... enough to kill MCS 4 data
            // while still letting the base-rate RTS through.
            vec![ap(0, 0.0), ap(1, 1_110.0)],
            Dbm(30.0),
            vec![sta(100, 400.0, 0.0), sta(101, 1_210.0, 0.0)],
            vec![0, 1],
            5,
        );
        assert!(sim.reachable(0) && sim.reachable(1));
        sim.enqueue(0, 50_000_000);
        sim.enqueue(1, 50_000_000);
        sim.run_until(Instant::from_secs(1));
        let failures = sim.stats().failures[0];
        let attempts = sim.stats().attempts[0];
        assert!(
            failures as f64 > 0.3 * attempts as f64,
            "expected heavy hidden-terminal losses: {failures}/{attempts}"
        );
    }

    #[test]
    fn rts_cts_mitigates_hidden_terminals() {
        // The textbook NAV win: two mutually hidden APs (1.11 km apart,
        // below carrier sense) serving clients in the contested middle,
        // where each client's SINR under overlap is ~0 dB — below MCS 0,
        // so no rate adaptation can save a collided frame. Both clients'
        // 30 dBm CTSes reach the opposite AP (~565 m), so a successful
        // RTS reserves the air and the data goes out clean.
        let build = |rts: bool, seed: u64| {
            let cfg = WifiConfig {
                rts_cts: rts,
                ..WifiConfig::af_default()
            };
            let mut sim = WifiSimulator::new(
                env(),
                cfg,
                vec![ap(0, 0.0), ap(1, 1_110.0)],
                Dbm(30.0),
                vec![sta(100, 545.0, 30.0), sta(101, 565.0, -30.0)],
                vec![0, 1],
                seed,
            );
            sim.enqueue(0, 20_000_000);
            sim.enqueue(1, 20_000_000);
            sim.run_until(Instant::from_secs(2));
            sim.stats().delivered_bytes.iter().sum::<u64>()
        };
        let total_no = build(false, 23);
        let total_yes = build(true, 23);
        assert!(
            total_yes > 5 * total_no,
            "RTS/CTS should transform mutual starvation: {total_yes} vs {total_no}"
        );
    }

    #[test]
    fn retry_limit_eventually_drops() {
        // A station reachable at mean SNR but permanently jammed by a
        // co-channel transmitter that ignores CSMA (modelled by a second
        // AP pair far enough to be hidden): drops must occur.
        let cfg = WifiConfig {
            rts_cts: false,
            retry_limit: 3,
            ..WifiConfig::af_default()
        };
        let mut sim = WifiSimulator::new(
            env(),
            cfg,
            vec![ap(0, 0.0), ap(1, 1_110.0)],
            Dbm(30.0),
            vec![sta(100, 400.0, 0.0), sta(101, 1_210.0, 0.0)],
            vec![0, 1],
            11,
        );
        sim.enqueue(0, 5_000_000);
        sim.enqueue(1, 5_000_000);
        sim.run_until(Instant::from_secs(2));
        let drops: u64 = sim.stats().drops.iter().sum();
        assert!(drops > 0, "retry limit never hit");
    }

    #[test]
    fn capture_margin_blocks_comparable_power_overlap() {
        // Victim's signal is ~6 dB above the interferer: SINR clears
        // MCS 0 but the 10 dB capture margin does not — the receiver
        // cannot hold sync, so the victim starves (the ns-3-like
        // no-capture behaviour the paper's Fig 9 Wi-Fi numbers reflect).
        let cfg = WifiConfig {
            rts_cts: false,
            ..WifiConfig::af_default()
        };
        let mut sim = WifiSimulator::new(
            env(),
            cfg,
            vec![ap(0, 0.0), ap(1, 1_110.0)],
            Dbm(30.0),
            vec![sta(100, 400.0, 0.0), sta(101, 1_210.0, 0.0)],
            vec![0, 1],
            21,
        );
        sim.enqueue(0, 10_000_000);
        sim.enqueue(1, 10_000_000);
        sim.run_until(Instant::from_secs(1));
        // sta 100 fails whenever AP1 overlaps; with AP1's high duty cycle
        // it gets through only in AP1's contention gaps.
        let near = sim.stats().delivered_bytes[1];
        let victim = sim.stats().delivered_bytes[0];
        assert!(near > 0);
        assert!(
            (victim as f64) < 0.25 * near as f64,
            "capture margin should suppress the victim: {victim} vs {near}"
        );
    }

    #[test]
    fn zero_margin_restores_pure_sinr_capture() {
        let build = |margin: f64| {
            let cfg = WifiConfig {
                rts_cts: false,
                capture_margin_db: margin,
                ..WifiConfig::af_default()
            };
            let mut sim = WifiSimulator::new(
                env(),
                cfg,
                vec![ap(0, 0.0), ap(1, 1_110.0)],
                Dbm(30.0),
                vec![sta(100, 200.0, 0.0), sta(101, 1_210.0, 0.0)],
                vec![0, 1],
                23,
            );
            sim.enqueue(0, 20_000_000);
            sim.enqueue(1, 20_000_000);
            sim.run_until(Instant::from_secs(1));
            sim.stats().delivered_bytes[0]
        };
        // At 200 m the victim's SINR under interference is high; only the
        // capture rule can hurt it, and 200 m leaves > 10 dB of margin, so
        // both configurations deliver similarly.
        let with = build(10.0);
        let without = build(0.0);
        assert!(with > 0 && without > 0);
        let ratio = with as f64 / without as f64;
        assert!((0.7..1.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn difs_slots_computation() {
        let cfg = WifiConfig::af_default();
        // SIFS 16 µs + 2×9 µs = 34 µs → 4 slots of 9 µs.
        assert_eq!(cfg.difs_slots(), 4);
    }
}
