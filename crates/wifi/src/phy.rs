//! 802.11 PHY: MCS tables, rate adaptation and frame durations.
//!
//! 802.11af keeps the 802.11ac (VHT) PHY, down-clocked onto 6/8 MHz TV
//! channels (§3.1: "the standard has opted to keep the main features of
//! the 802.11 PHY ... same modulation and coding rates as 802.11ac").
//! The consequences the paper builds on:
//!
//! * the **lowest code rate is 1/2** (Table 1) — no low-SNR regime;
//! * one OFDM transmission spans the **whole channel** (no OFDMA);
//! * down-clocking stretches symbols, so overheads (preamble, slot)
//!   stretch too.

use cellfi_types::time::Duration;
use cellfi_types::units::{Db, Hertz};

/// Channelization the PHY runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WifiBand {
    /// 802.11ac, 20 MHz channel (the home-Wi-Fi baseline of Fig 2).
    Ac20,
    /// 802.11af, one 6 MHz TV channel (US raster).
    Af6,
    /// 802.11af, one 8 MHz TV channel (EU raster).
    Af8,
}

/// One VHT MCS row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mcs {
    /// MCS index 0–9.
    pub index: u8,
    /// Modulation bits per subcarrier symbol.
    pub bits: u8,
    /// Code rate.
    pub code_rate: f64,
    /// Minimum SINR for reliable decoding.
    pub sinr_threshold: Db,
}

const fn mcs(index: u8, bits: u8, code_rate: f64, thr: f64) -> Mcs {
    Mcs {
        index,
        bits,
        code_rate,
        sinr_threshold: Db(thr),
    }
}

/// VHT MCS 0–9 with standard waterfall thresholds.
const MCS_TABLE: [Mcs; 10] = [
    mcs(0, 1, 0.5, 2.0),        // BPSK 1/2 — the lowest 802.11 can go
    mcs(1, 2, 0.5, 5.0),        // QPSK 1/2
    mcs(2, 2, 0.75, 9.0),       // QPSK 3/4
    mcs(3, 4, 0.5, 11.0),       // 16QAM 1/2
    mcs(4, 4, 0.75, 15.0),      // 16QAM 3/4
    mcs(5, 6, 2.0 / 3.0, 18.0), // 64QAM 2/3
    mcs(6, 6, 0.75, 20.0),      // 64QAM 3/4
    mcs(7, 6, 5.0 / 6.0, 25.0), // 64QAM 5/6
    mcs(8, 8, 0.75, 29.0),      // 256QAM 3/4
    mcs(9, 8, 5.0 / 6.0, 31.0), // 256QAM 5/6
];

/// The PHY rate table for one band.
#[derive(Debug, Clone, Copy)]
pub struct McsTable {
    band: WifiBand,
}

impl McsTable {
    /// Table for `band`.
    pub const fn new(band: WifiBand) -> McsTable {
        McsTable { band }
    }

    /// The band.
    pub fn band(&self) -> WifiBand {
        self.band
    }

    /// Channel bandwidth.
    pub fn bandwidth(&self) -> Hertz {
        match self.band {
            WifiBand::Ac20 => Hertz::from_mhz(20.0),
            WifiBand::Af6 => Hertz::from_mhz(6.0),
            WifiBand::Af8 => Hertz::from_mhz(8.0),
        }
    }

    /// Data subcarriers: 52 for 20 MHz VHT; TVHT uses the 40 MHz VHT
    /// structure (108 data subcarriers) down-clocked into the TV channel.
    pub fn data_subcarriers(&self) -> u32 {
        match self.band {
            WifiBand::Ac20 => 52,
            WifiBand::Af6 | WifiBand::Af8 => 108,
        }
    }

    /// OFDM symbol duration (long GI). 20 MHz: 4 µs. TVHT down-clocks the
    /// 40 MHz clock (nominal symbol 4 µs) by 40/6 or 40/8.
    pub fn symbol_duration(&self) -> Duration {
        match self.band {
            WifiBand::Ac20 => Duration::from_micros(4),
            WifiBand::Af6 => Duration::from_micros(4 * 40 / 6), // 26 µs
            WifiBand::Af8 => Duration::from_micros(4 * 40 / 8), // 20 µs
        }
    }

    /// All MCS rows.
    pub fn entries(&self) -> &'static [Mcs; 10] {
        &MCS_TABLE
    }

    /// PHY data rate of an MCS in bits/sec.
    pub fn rate_bps(&self, m: &Mcs) -> f64 {
        f64::from(self.data_subcarriers()) * f64::from(m.bits) * m.code_rate
            / self.symbol_duration().as_secs_f64()
    }

    /// Ideal rate adaptation: the fastest MCS whose threshold is at or
    /// below `sinr` ("our Wi-Fi implementation uses ideal rate adaptation
    /// based on the receiver's SINR", §6.3.4). `None` below MCS 0.
    pub fn select(&self, sinr: Db) -> Option<&'static Mcs> {
        MCS_TABLE
            .iter()
            .rev()
            .find(|m| sinr.value() >= m.sinr_threshold.value())
    }

    /// PLCP preamble + header duration: ~10 symbol times (L-STF/L-LTF/
    /// L-SIG/VHT-SIG/VHT-STF/VHT-LTF).
    pub fn preamble(&self) -> Duration {
        self.symbol_duration() * 10
    }

    /// Airtime of a data frame of `bytes` at MCS `m`, including preamble.
    pub fn frame_duration(&self, bytes: usize, m: &Mcs) -> Duration {
        let bits = bytes as f64 * 8.0;
        let symbols = (bits
            / (f64::from(self.data_subcarriers()) * f64::from(m.bits) * m.code_rate))
            .ceil() as u64;
        self.preamble() + self.symbol_duration() * symbols.max(1)
    }

    /// Airtime of a control frame (RTS 20 B / CTS, ACK 14 B) at MCS 0.
    pub fn control_duration(&self, bytes: usize) -> Duration {
        self.frame_duration(bytes, &MCS_TABLE[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimum_code_rate_is_half() {
        // Table 1's 802.11af row: coding rate ≥ 0.5.
        let min = MCS_TABLE
            .iter()
            .map(|m| m.code_rate)
            .fold(f64::INFINITY, f64::min);
        assert!((min - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ac20_peak_rate_near_spec() {
        // VHT 20 MHz MCS 8 long GI ≈ 78 Mbps (spec: 78.0).
        let t = McsTable::new(WifiBand::Ac20);
        let rate = t.rate_bps(&t.entries()[8]) / 1e6;
        assert!((rate - 78.0).abs() < 1.0, "got {rate} Mbps");
    }

    #[test]
    fn af6_peak_rate_near_27_mbps() {
        // One 6 MHz BCU peaks around 26–27 Mbps (published 802.11af figure).
        let t = McsTable::new(WifiBand::Af6);
        let rate = t.rate_bps(&t.entries()[9]) / 1e6;
        assert!((26.0..29.0).contains(&rate), "got {rate} Mbps");
    }

    #[test]
    fn af8_faster_than_af6() {
        let t6 = McsTable::new(WifiBand::Af6);
        let t8 = McsTable::new(WifiBand::Af8);
        assert!(t8.rate_bps(&t8.entries()[5]) > t6.rate_bps(&t6.entries()[5]));
    }

    #[test]
    fn rate_adaptation_monotone() {
        let t = McsTable::new(WifiBand::Af6);
        let mut last = -1i16;
        for s in -5..40 {
            let idx = t
                .select(Db(f64::from(s)))
                .map_or(-1, |m| i16::from(m.index));
            assert!(idx >= last, "not monotone at {s} dB");
            last = idx;
        }
    }

    #[test]
    fn below_mcs0_threshold_no_rate() {
        let t = McsTable::new(WifiBand::Af6);
        assert!(t.select(Db(1.9)).is_none());
        assert_eq!(t.select(Db(2.0)).unwrap().index, 0);
        assert_eq!(t.select(Db(50.0)).unwrap().index, 9);
    }

    #[test]
    fn wifi_needs_more_sinr_than_lte_floor() {
        // LTE CQI 1 works at −6.7 dB; Wi-Fi MCS 0 needs +2 dB. This ~9 dB
        // gap is the PHY half of the paper's coverage argument.
        assert!(MCS_TABLE[0].sinr_threshold.value() - (-6.7) > 8.0);
    }

    #[test]
    fn down_clocking_stretches_symbols() {
        assert_eq!(
            McsTable::new(WifiBand::Af6).symbol_duration(),
            Duration::from_micros(26)
        );
        assert_eq!(
            McsTable::new(WifiBand::Ac20).symbol_duration(),
            Duration::from_micros(4)
        );
    }

    #[test]
    fn frame_duration_includes_preamble_and_rounds_up() {
        let t = McsTable::new(WifiBand::Ac20);
        let m = &t.entries()[0]; // 26 bits per symbol
        let d = t.frame_duration(13, m); // 104 bits → 4 symbols
        assert_eq!(d, t.preamble() + t.symbol_duration() * 4);
        // A single bit still costs one symbol.
        let tiny = t.frame_duration(0, m);
        assert_eq!(tiny, t.preamble() + t.symbol_duration());
    }

    #[test]
    fn aggregated_frame_amortizes_preamble() {
        // The efficiency rationale for A-MPDU: 65 KB in one frame beats
        // 65 × 1 KB frames by a wide margin.
        let t = McsTable::new(WifiBand::Af6);
        let m = &t.entries()[5];
        let one_big = t.frame_duration(65_000, m);
        let many_small: Duration =
            (0..65).fold(Duration::ZERO, |acc, _| acc + t.frame_duration(1_000, m));
        let ratio = many_small.as_secs_f64() / one_big.as_secs_f64();
        assert!(ratio > 1.15, "aggregation gain only {ratio}");
    }

    #[test]
    fn control_frames_use_base_rate() {
        let t = McsTable::new(WifiBand::Af6);
        let rts = t.control_duration(20);
        // 160 bits at MCS0 (54 bits/symbol) = 3 symbols + preamble.
        assert_eq!(rts, t.preamble() + t.symbol_duration() * 3);
    }
}
