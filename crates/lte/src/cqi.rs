//! CQI reporting: wideband and aperiodic mode 3-0 sub-band reports.
//!
//! CellFi's interference detector consumes "higher layer-configured
//! aperiodic mode 3-0, sub-band CQI reports every 2 msec" (§5.1). A mode
//! 3-0 report carries one 4-bit wideband CQI plus a 2-bit differential
//! per sub-band; the paper quotes a 20-bit payload on 5 MHz and a 10 kbps
//! uplink overhead at the 2 ms cadence (§6.3.4 "Overheads of signaling").
//!
//! Note the paper's arithmetic (1×4 + 13×2 = 30 raw bits, quoted as 20)
//! reflects that the 2-bit sub-band field is a *differential* limited to
//! the standard's offset range; we expose both the raw layout and the
//! paper's quoted figure so the overhead experiment can show each.

use crate::amc::{Cqi, CqiTable};
use cellfi_types::time::{Duration, Instant};
use cellfi_types::units::Db;
use cellfi_types::SubchannelId;

/// Sub-band differential CQI range (TS 36.213 mode 3-0: 2-bit offset).
const DIFF_MIN: i8 = -1;
const DIFF_MAX: i8 = 2;

/// An aperiodic mode 3-0 CQI report: wideband value plus per-sub-band
/// differentials.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mode30Report {
    /// When the report was generated.
    pub at: Instant,
    /// 4-bit wideband CQI.
    pub wideband: Cqi,
    /// Per-sub-band 2-bit differential (sub-band CQI − wideband CQI,
    /// clamped to the standard's offset range).
    pub subband_diff: Vec<i8>,
}

impl Mode30Report {
    /// Reconstruct the absolute CQI of a sub-band as the receiver would.
    pub fn subband_cqi(&self, subband: SubchannelId) -> Cqi {
        let diff = self.subband_diff[subband.index()];
        let v = i16::from(self.wideband.0) + i16::from(diff);
        Cqi(v.clamp(0, 15) as u8)
    }

    /// Raw payload bits: 4-bit wideband + 2 bits per sub-band.
    pub fn raw_bits(&self) -> u32 {
        4 + 2 * self.subband_diff.len() as u32
    }
}

/// The paper's quoted payload size for one mode 3-0 report on 5 MHz.
pub const PAPER_REPORT_BITS: u32 = 20;

/// Uplink signalling overhead of periodic reports, bits/sec.
pub fn overhead_bps(report_bits: u32, period: Duration) -> f64 {
    f64::from(report_bits) / period.as_secs_f64()
}

/// Generates mode 3-0 reports from per-sub-band SINR measurements.
#[derive(Debug, Clone, Default)]
pub struct CqiReporter {
    table: CqiTable,
}

impl CqiReporter {
    /// Build a report from per-sub-band SINRs measured at `now`.
    pub fn report(&self, at: Instant, subband_sinr: &[Db]) -> Mode30Report {
        assert!(!subband_sinr.is_empty(), "need at least one sub-band");
        // Wideband CQI reflects the *effective* channel across sub-bands:
        // average the per-sub-band capacity and map back to an equivalent
        // SINR (mutual-information effective SINR mapping). A plain linear
        // mean would let one strong sub-band mask twelve dead ones.
        let mean_capacity = subband_sinr
            .iter()
            .map(|s| (1.0 + s.to_linear()).log2())
            .sum::<f64>()
            / subband_sinr.len() as f64;
        let eff_linear = 2f64.powf(mean_capacity) - 1.0;
        let wideband = self
            .table
            .cqi_for_sinr(Db(10.0 * eff_linear.max(1e-12).log10()));
        let subband_diff = subband_sinr
            .iter()
            .map(|&s| {
                let sc = self.table.cqi_for_sinr(s);
                let d = i16::from(sc.0) - i16::from(wideband.0);
                d.clamp(i16::from(DIFF_MIN), i16::from(DIFF_MAX)) as i8
            })
            .collect();
        Mode30Report {
            at,
            wideband,
            subband_diff,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(n: usize, db: f64) -> Vec<Db> {
        vec![Db(db); n]
    }

    #[test]
    fn flat_channel_has_zero_differentials() {
        let r = CqiReporter::default().report(Instant::ZERO, &flat(13, 10.0));
        assert!(r.subband_diff.iter().all(|&d| d == 0));
        assert_eq!(r.wideband, CqiTable.cqi_for_sinr(Db(10.0)));
    }

    #[test]
    fn interfered_subband_reports_negative_differential() {
        // One sub-band 20 dB down — the signature CellFi's detector keys on.
        let mut sinrs = flat(13, 12.0);
        sinrs[4] = Db(-8.0);
        let r = CqiReporter::default().report(Instant::ZERO, &sinrs);
        assert_eq!(r.subband_diff[4], DIFF_MIN);
        assert!(r.subband_cqi(SubchannelId::new(4)) < r.wideband);
    }

    #[test]
    fn good_subband_clamps_at_plus_two() {
        let mut sinrs = flat(13, 0.0);
        sinrs[7] = Db(25.0);
        let r = CqiReporter::default().report(Instant::ZERO, &sinrs);
        assert_eq!(r.subband_diff[7], DIFF_MAX);
    }

    #[test]
    fn subband_cqi_reconstruction_clamps_to_valid_range() {
        let r = Mode30Report {
            at: Instant::ZERO,
            wideband: Cqi(15),
            subband_diff: vec![2, -1, 0],
        };
        assert_eq!(r.subband_cqi(SubchannelId::new(0)), Cqi(15));
        let low = Mode30Report {
            at: Instant::ZERO,
            wideband: Cqi(0),
            subband_diff: vec![-1],
        };
        assert_eq!(low.subband_cqi(SubchannelId::new(0)), Cqi(0));
    }

    #[test]
    fn raw_bits_on_5mhz() {
        let r = CqiReporter::default().report(Instant::ZERO, &flat(13, 5.0));
        assert_eq!(r.raw_bits(), 4 + 26);
    }

    #[test]
    fn paper_overhead_figure_10kbps() {
        // §6.3.4: 20 bits per report / 2 ms = 10 kbps.
        let bps = overhead_bps(PAPER_REPORT_BITS, Duration::CQI_PERIOD);
        assert!((bps - 10_000.0).abs() < 1e-6);
    }

    #[test]
    fn raw_overhead_is_15kbps() {
        let bps = overhead_bps(30, Duration::CQI_PERIOD);
        assert!((bps - 15_000.0).abs() < 1e-6);
    }

    #[test]
    fn wideband_is_mean_not_max() {
        // 12 dead sub-bands and one great one must not report a great
        // wideband CQI.
        let mut sinrs = flat(13, -10.0);
        sinrs[0] = Db(30.0);
        let r = CqiReporter::default().report(Instant::ZERO, &sinrs);
        assert!(r.wideband < Cqi(8), "wideband {:?}", r.wideband);
    }
}
