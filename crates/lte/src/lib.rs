//! # cellfi-lte
//!
//! A from-scratch LTE system model — the substrate the CellFi paper runs
//! on. The paper used off-the-shelf small cells (IP Access E40), a
//! Qualcomm UE and an SDR access point; this crate replaces them with
//! models of the 3GPP mechanisms the paper's arguments rest on
//! (Table 1, §3.1):
//!
//! * **OFDMA resource grid** ([`grid`]) — 180 kHz × 1 ms resource blocks,
//!   grouped into the minimal schedulable *subchannels* (13 on 5 MHz,
//!   25 on 20 MHz) that CellFi's interference management allocates.
//! * **TDD frame structure** ([`tdd`]) — frame type 2 configurations; the
//!   paper uses configuration 4 (7 downlink + 2 uplink subframes per
//!   10 ms).
//! * **Adaptive modulation & coding** ([`amc`]) — the 4-bit CQI table,
//!   SINR→CQI mapping and a BLER model. LTE's ability to run at code rate
//!   ~0.1 (vs Wi-Fi's minimum 1/2) is half of the paper's coverage story.
//! * **Hybrid ARQ** ([`harq`]) — stop-and-wait processes with chase
//!   combining; the other half of the coverage story (25 % of packets
//!   beyond 500 m used HARQ in Fig 1).
//! * **CQI reporting** ([`cqi`]) — wideband and aperiodic mode 3-0
//!   sub-band reports every 2 ms, the sensing input of CellFi.
//! * **PRACH** ([`prach`]) — Zadoff–Chu preambles and the paper's
//!   low-complexity timing-free detector (§6.3.3), plus the −10 dB
//!   detection-probability model used by the system simulations.
//! * **Schedulers** ([`scheduler`]) — proportional-fair and round-robin
//!   over an *allowed subchannel mask*, the interface CellFi's
//!   interference manager drives ("we don't require any modifications of
//!   the standard scheduler", §4.3).
//! * **Cells and UEs** ([`cell`], [`ue`]) — attach state machines, SIB
//!   broadcast of uplink frequency/power ([`sib`]), EARFCN mapping
//!   ([`earfcn`]).
//! * **Control-channel interference** ([`control`]) — the measured
//!   ≤ 20 % goodput degradation from an idle interfering cell (Fig 7b),
//!   applied as a SINR-dependent scale factor in the system simulations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amc;
pub mod cell;
pub mod control;
pub mod cqi;
pub mod dsp;
pub mod earfcn;
pub mod grid;
pub mod harq;
pub mod prach;
pub mod scheduler;
pub mod sib;
pub mod tdd;
pub mod ue;

pub use amc::{Cqi, CqiTable, Modulation};
pub use cell::{Cell, CellConfig};
pub use grid::{ChannelBandwidth, ResourceGrid};
pub use scheduler::{Allocation, Scheduler, SchedulerKind};
pub use tdd::{SubframeKind, TddConfig};
pub use ue::{RrcState, Ue};
