//! Control-channel interference model.
//!
//! "LTE control elements are always present and can create interference
//! even when there is no data being transmitted" (§6.3.1). The paper
//! measures this with two outdoor small cells (Fig 7b): an *idle*
//! interferer (CRS/PSS/SSS only) costs "at most 20 %, and in most cases
//! much less", even down to −15 dB SINR; a *backlogged* interferer costs
//! up to 50 % and causes disconnections below 10 dB SINR.
//!
//! The large-scale simulations "model the control channel interference by
//! scaling down the measured throughput based on the measurements in
//! Fig 7" — this module is that scaling function: a piecewise-linear
//! goodput retention factor in the SINR towards the *idle* interferer.

use cellfi_types::units::Db;

/// Goodput retention factor (0..=1) under signalling-only interference
/// from a neighbouring cell, as a function of the SINR of the serving
/// signal over that neighbour's signalling.
///
/// Calibration (Fig 7b): no measurable loss above +10 dB; worst-case 20 %
/// loss at and below −15 dB; linear in between.
pub fn signalling_retention(sinr_towards_interferer: Db) -> f64 {
    const HI: f64 = 10.0; // dB, no loss above this
    const LO: f64 = -15.0; // dB, max loss at/below this
    const MAX_LOSS: f64 = 0.20;
    let s = sinr_towards_interferer.value();
    if s >= HI {
        1.0
    } else if s <= LO {
        1.0 - MAX_LOSS
    } else {
        1.0 - MAX_LOSS * (HI - s) / (HI - LO)
    }
}

/// Fraction of downlink resource elements occupied by always-on control
/// signals (CRS on 2 ports + PSS/SSS/PBCH): what an idle cell still
/// radiates.
pub const IDLE_CELL_ACTIVITY: f64 = 0.10;

/// Below this SINR with a *fully backlogged* co-channel interferer, the
/// paper observed frequent disconnections (§3.2, §6.3.1).
pub const DISCONNECT_SINR: Db = Db(-9.0);

/// Whether a link at `sinr` under full data interference is in the
/// disconnection regime the paper reports.
pub fn data_interference_disconnects(sinr: Db) -> bool {
    sinr.value() < DISCONNECT_SINR.value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_loss_at_high_sinr() {
        assert_eq!(signalling_retention(Db(10.0)), 1.0);
        assert_eq!(signalling_retention(Db(30.0)), 1.0);
    }

    #[test]
    fn paper_bound_twenty_percent_at_minus_15() {
        // Fig 7b: signalling interference costs at most 20 %.
        assert!((signalling_retention(Db(-15.0)) - 0.8).abs() < 1e-12);
        assert!((signalling_retention(Db(-30.0)) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn retention_monotone_in_sinr() {
        let mut last = 0.0;
        for i in -30..=30 {
            let r = signalling_retention(Db(f64::from(i)));
            assert!(r >= last - 1e-12, "not monotone at {i} dB");
            last = r;
        }
    }

    #[test]
    fn midpoint_loses_half_the_max() {
        // Halfway between −15 and +10 dB is −2.5 dB → 10 % loss.
        let r = signalling_retention(Db(-2.5));
        assert!((r - 0.9).abs() < 1e-9);
    }

    #[test]
    fn retention_bounded() {
        for i in -50..=50 {
            let r = signalling_retention(Db(f64::from(i)));
            assert!((0.8..=1.0).contains(&r));
        }
    }

    #[test]
    fn disconnect_threshold() {
        assert!(data_interference_disconnects(Db(-12.0)));
        assert!(!data_interference_disconnects(Db(0.0)));
    }
}
