//! EARFCN ↔ carrier frequency mapping.
//!
//! After channel selection, "the LTE access point sets the centre
//! frequency (EARFCN) for downlink transmission and announces the uplink
//! frequency in the LTE SIB control message, both in granularity of
//! 100 kHz" (§4.2). We carry the 3GPP band table rows the paper leans on:
//!
//! * **band 13** (746–756 MHz DL) — the band the authors' testbed ran in;
//! * **band 44** (703–803 MHz TDD) — "coincides with part of the TV white
//!   space spectrum in the UK";
//! * a **TVWS pseudo-band** covering the full ETSI 470–790 MHz TV range,
//!   standing in for the future bands the paper anticipates from the US
//!   incentive auction.
//!
//! Mapping follows TS 36.101 §5.7.3: `F = F_low + 0.1·(N − N_offset)` MHz.

use cellfi_types::units::Hertz;

/// A 3GPP (or pseudo) frequency band usable by CellFi.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Band {
    /// FDD band 13 downlink (746–756 MHz), the paper's testbed band.
    Band13,
    /// TDD band 44 (703–803 MHz), overlapping UK TVWS.
    Band44,
    /// Pseudo-band spanning the ETSI TV broadcast range 470–790 MHz,
    /// representing future TVWS LTE allocations.
    Tvws,
}

/// An E-UTRA absolute radio frequency channel number within a band.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Earfcn {
    /// The band this EARFCN belongs to.
    pub band: Band,
    /// Channel number.
    pub number: u32,
}

struct BandRow {
    f_low_mhz: f64,
    n_offset: u32,
    n_max: u32,
}

impl Band {
    fn row(self) -> BandRow {
        match self {
            // TS 36.101: band 13 DL F_low 746 MHz, offset 5180, range 5180–5279.
            Band::Band13 => BandRow {
                f_low_mhz: 746.0,
                n_offset: 5180,
                n_max: 5279,
            },
            // Band 44: F_low 703 MHz, offset 45590, range 45590–46589.
            Band::Band44 => BandRow {
                f_low_mhz: 703.0,
                n_offset: 45590,
                n_max: 46589,
            },
            // Pseudo-band: 470–790 MHz in 100 kHz steps from offset 100000.
            Band::Tvws => BandRow {
                f_low_mhz: 470.0,
                n_offset: 100_000,
                n_max: 103_200,
            },
        }
    }

    /// Lowest carrier frequency of the band.
    pub fn f_low(self) -> Hertz {
        Hertz::from_mhz(self.row().f_low_mhz)
    }

    /// Inclusive EARFCN range of the band.
    pub fn earfcn_range(self) -> (u32, u32) {
        let r = self.row();
        (r.n_offset, r.n_max)
    }

    /// Whether the band is TDD (single frequency for both directions) —
    /// the mode CellFi requires so one TV channel carries both directions.
    pub fn is_tdd(self) -> bool {
        matches!(self, Band::Band44 | Band::Tvws)
    }
}

impl Earfcn {
    /// Construct, validating the number lies in the band.
    pub fn new(band: Band, number: u32) -> Earfcn {
        let (lo, hi) = band.earfcn_range();
        assert!(
            (lo..=hi).contains(&number),
            "EARFCN {number} outside {band:?} range {lo}–{hi}"
        );
        Earfcn { band, number }
    }

    /// Carrier frequency of this channel number.
    pub fn frequency(self) -> Hertz {
        let r = self.band.row();
        Hertz::from_mhz(r.f_low_mhz + 0.1 * f64::from(self.number - r.n_offset))
    }

    /// The EARFCN in `band` closest to `freq` (100 kHz grid).
    pub fn from_frequency(band: Band, freq: Hertz) -> Earfcn {
        let r = band.row();
        let steps = ((freq.mhz() - r.f_low_mhz) / 0.1).round();
        assert!(steps >= 0.0, "frequency below band {band:?}");
        let number = r.n_offset + steps as u32;
        Earfcn::new(band, number)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band13_low_edge() {
        let e = Earfcn::new(Band::Band13, 5180);
        assert!((e.frequency().mhz() - 746.0).abs() < 1e-9);
    }

    #[test]
    fn band44_covers_uk_tvws_overlap() {
        let lo = Earfcn::new(Band::Band44, 45590).frequency();
        let hi = Earfcn::new(Band::Band44, 46589).frequency();
        assert!((lo.mhz() - 703.0).abs() < 1e-9);
        assert!((hi.mhz() - 802.9).abs() < 1e-9);
        assert!(Band::Band44.is_tdd());
    }

    #[test]
    fn hundred_khz_granularity() {
        let a = Earfcn::new(Band::Band44, 45600).frequency();
        let b = Earfcn::new(Band::Band44, 45601).frequency();
        assert!(((b.mhz() - a.mhz()) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn frequency_round_trip() {
        for n in [45590u32, 45999, 46589] {
            let e = Earfcn::new(Band::Band44, n);
            let back = Earfcn::from_frequency(Band::Band44, e.frequency());
            assert_eq!(back, e);
        }
    }

    #[test]
    fn tvws_pseudo_band_spans_etsi_range() {
        let lo = Earfcn::new(Band::Tvws, 100_000).frequency();
        let hi = Earfcn::new(Band::Tvws, 103_200).frequency();
        assert!((lo.mhz() - 470.0).abs() < 1e-9);
        assert!((hi.mhz() - 790.0).abs() < 1e-9);
    }

    #[test]
    fn tv_channel_centres_map_into_tvws_band() {
        // EU TV channel 38 centre: 470 + 8×(38−21) + 4 = 610 MHz.
        let f = Hertz::from_mhz(610.0);
        let e = Earfcn::from_frequency(Band::Tvws, f);
        assert!((e.frequency().mhz() - 610.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_band_number_panics() {
        let _ = Earfcn::new(Band::Band13, 9999);
    }

    #[test]
    fn band13_is_fdd() {
        assert!(!Band::Band13.is_tdd());
    }
}
