//! PRACH: Zadoff–Chu preambles and the paper's low-complexity detector.
//!
//! CellFi estimates the number of contending clients by *overhearing*
//! PRACH preambles of clients it is not serving (§5.1, §6.3.3). The
//! challenge: an eavesdropping access point knows neither the preamble
//! sequence number nor the timing. The paper's trick exploits Zadoff–Chu
//! structure — a time offset of the received preamble appears as a phase
//! ramp, and both the cyclic shift (preamble id) and the delay show up as
//! a single shifted correlation peak. So the detector only needs to
//! compute the correlation power profile against the *root* sequence and
//! check its peak: "one \[correlation\] to detect the most likely cyclic
//! shift and another to check its correlation value".
//!
//! This module implements:
//!
//! * ZC root sequence and cyclically shifted preamble generation
//!   (`N_ZC = 839`, format 0);
//! * an AWGN channel for Monte-Carlo detection tests;
//! * [`PrachDetector`] — the frequency-domain correlation detector with a
//!   peak-to-average threshold, timing- and sequence-number-free;
//! * [`detection_threshold_snr`] / [`heard`] — the −10 dB rule the
//!   system simulations use for neighbour-client counting (§6.3.4).

use cellfi_types::units::Db;
use rand::Rng;

/// ZC sequence length for preamble formats 0–3 (TS 36.211).
pub const N_ZC: usize = 839;

/// PRACH format 0 useful-part duration: 800 µs. One correlation per
/// occasion must complete within this to keep up with line rate.
pub const PREAMBLE_DURATION_US: f64 = 800.0;

pub use crate::dsp::Complex;

/// Generate ZC root sequence `u`: `x_u(n) = e^{−jπ u n(n+1)/N_ZC}`.
pub fn zc_root(u: u32) -> Vec<Complex> {
    assert!(u >= 1 && (u as usize) < N_ZC, "root must be 1..N_ZC");
    (0..N_ZC)
        .map(|n| {
            let n = n as f64;
            let phase = -std::f64::consts::PI * f64::from(u) * n * (n + 1.0) / N_ZC as f64;
            Complex::cis(phase)
        })
        .collect()
}

/// A preamble: the root cyclically shifted by `shift` samples
/// (`x_{u,v}(n) = x_u((n + C_v) mod N_ZC)`).
pub fn preamble(root: &[Complex], shift: usize) -> Vec<Complex> {
    assert_eq!(root.len(), N_ZC);
    (0..N_ZC).map(|n| root[(n + shift) % N_ZC]).collect()
}

/// Apply a further *time* offset (circular, modelling unknown arrival
/// time within the observation window) and AWGN at the given per-sample
/// SNR. Returns the received samples.
pub fn awgn_channel<R: Rng>(
    tx: &[Complex],
    time_offset: usize,
    snr: Db,
    rng: &mut R,
) -> Vec<Complex> {
    let n = tx.len();
    let noise_power = 1.0 / snr.to_linear(); // signal power is 1 per sample
    let sigma = (noise_power / 2.0).sqrt();
    (0..n)
        .map(|i| {
            let s = tx[(i + time_offset) % n];
            let (g1, g2) = gaussian_pair(rng);
            s + Complex::new(g1 * sigma, g2 * sigma)
        })
        .collect()
}

/// Noise-only samples of unit noise power.
pub fn noise_only<R: Rng>(n: usize, rng: &mut R) -> Vec<Complex> {
    let sigma = (0.5f64).sqrt();
    (0..n)
        .map(|_| {
            let (g1, g2) = gaussian_pair(rng);
            Complex::new(g1 * sigma, g2 * sigma)
        })
        .collect()
}

fn gaussian_pair<R: Rng>(rng: &mut R) -> (f64, f64) {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    let r = (-2.0 * u1.ln()).sqrt();
    let th = 2.0 * std::f64::consts::PI * u2;
    (r * th.cos(), r * th.sin())
}

/// Result of a detection attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Whether a preamble was declared present.
    pub detected: bool,
    /// The most likely combined cyclic shift (preamble id ⊕ delay).
    pub shift: usize,
    /// Peak-to-average power ratio of the correlation profile.
    pub peak_to_average: f64,
}

/// The timing-free PRACH detector.
///
/// ```
/// use cellfi_lte::prach::{zc_root, preamble, PrachDetector};
/// let det = PrachDetector::new(129);
/// // A preamble with unknown cyclic shift is found, shift recovered.
/// let rx = preamble(&zc_root(129), 419);
/// let d = det.detect(&rx);
/// assert!(d.detected);
/// assert_eq!(d.shift, 419);
/// ```
///
/// Correlates the received window against the known root sequence for
/// every cyclic shift (the circular cross-correlation power profile) and
/// declares a preamble when the profile's peak-to-average ratio exceeds
/// the threshold. The shift of the peak is the combined preamble-id/delay
/// shift — exactly what the paper's detector recovers, and all it needs,
/// since CellFi only counts *that a client raced*, not which one.
#[derive(Debug, Clone)]
pub struct PrachDetector {
    root_conj: Vec<Complex>,
    /// [`CONV_LEN`]-point FFT of the correlation kernel
    /// `g[i] = root*[N_ZC−1−i]` (precomputed once per root).
    kernel_fft: Vec<Complex>,
    /// Shared radix-2 plan for the convolution FFTs.
    plan: std::sync::Arc<crate::dsp::Pow2Plan>,
    /// Peak-to-average ratio above which a preamble is declared.
    pub threshold: f64,
}

/// FFT length of the detector's correlation convolution. The profile
/// needs linear-convolution lags `N_ZC−1 .. 2·N_ZC−2` of a
/// `(2·N_ZC−1)`-sample window against an `N_ZC`-tap kernel; a
/// `CONV_LEN`-point circular convolution only aliases lags below
/// `3·N_ZC−2−CONV_LEN < N_ZC−1`, so every needed lag is exact. This is
/// the smallest power of two with that property (`CONV_LEN > 2·N_ZC−2`).
const CONV_LEN: usize = 2048;

impl PrachDetector {
    /// Detector for ZC root `u`. With the default threshold of 20 the
    /// noise-only false-alarm probability per window is ~1e-6 (the profile
    /// bins are iid exponential under noise, so `P(max > 20·mean) ≈
    /// 839·e^−20`), while the 839-chip coherent gain keeps the peak around
    /// 80× the bin mean even at −10 dB SNR.
    pub fn new(u: u32) -> PrachDetector {
        let root = zc_root(u);
        let plan = crate::dsp::pow2_plan(CONV_LEN);
        // Time-reversed conjugate root: convolution with it is
        // correlation with the root.
        let mut kernel = vec![Complex::default(); CONV_LEN];
        for (i, c) in kernel.iter_mut().take(N_ZC).enumerate() {
            *c = root[N_ZC - 1 - i].conj();
        }
        plan.fft(&mut kernel, false);
        PrachDetector {
            root_conj: root.iter().map(|c| c.conj()).collect(),
            kernel_fft: kernel,
            plan,
            threshold: 20.0,
        }
    }

    /// Circular cross-correlation power profile `P(s) = |Σ_n y(n+s)·x*(n)|²`.
    ///
    /// Rather than prime-length DFTs (Bluestein costs four power-of-two
    /// FFTs per profile: two in the forward DFT, two in the inverse),
    /// the circular correlation is computed directly as a linear
    /// convolution of the doubled window `rx ∥ rx[..N_ZC−1]` with the
    /// time-reversed conjugate root, whose spectrum is precomputed. That
    /// is **two** [`CONV_LEN`]-point FFTs per window — the optimisation
    /// that lifts the detector well past line rate (see the
    /// `prach_detector` bench): `P(s) = |conv[s + N_ZC − 1]|²`.
    pub fn correlation_profile(&self, rx: &[Complex]) -> Vec<f64> {
        assert_eq!(rx.len(), N_ZC, "expected one {N_ZC}-sample window");
        let mut y = vec![Complex::default(); CONV_LEN];
        for (j, c) in y.iter_mut().take(2 * N_ZC - 1).enumerate() {
            *c = rx[j % N_ZC];
        }
        self.plan.fft(&mut y, false);
        for (a, b) in y.iter_mut().zip(&self.kernel_fft) {
            *a = *a * *b;
        }
        self.plan.fft(&mut y, true);
        y[N_ZC - 1..]
            .iter()
            .take(N_ZC)
            .map(|c| c.norm_sq())
            .collect()
    }

    /// Reference O(N²) time-domain profile (tests check the FFT path
    /// against it).
    pub fn correlation_profile_naive(&self, rx: &[Complex]) -> Vec<f64> {
        let n = N_ZC;
        assert_eq!(rx.len(), n, "expected one {n}-sample window");
        let mut profile = vec![0.0f64; n];
        for (s, p) in profile.iter_mut().enumerate() {
            let mut acc = Complex::default();
            for i in 0..n {
                acc = acc + rx[(i + s) % n] * self.root_conj[i];
            }
            *p = acc.norm_sq();
        }
        profile
    }

    /// Run detection on one received window: the paper's "two
    /// correlations" — find the most likely shift, then test its value.
    pub fn detect(&self, rx: &[Complex]) -> Detection {
        let profile = self.correlation_profile(rx);
        let mut peak = 0.0f64;
        let mut arg = 0usize;
        let mut total = 0.0f64;
        for (s, &p) in profile.iter().enumerate() {
            total += p;
            if p > peak {
                peak = p;
                arg = s;
            }
        }
        let mean = total / profile.len() as f64;
        let par = if mean > 0.0 { peak / mean } else { 0.0 };
        // The profile peaks at lag `s` where rx advanced by `s` aligns with
        // the root, i.e. at `N_ZC − shift`; convert back to the shift that
        // was applied to the root.
        Detection {
            detected: par > self.threshold,
            shift: (N_ZC - arg) % N_ZC,
            peak_to_average: par,
        }
    }

    /// [`PrachDetector::detect`] wrapped in a
    /// [`cellfi_obs::profile::SpanId::PrachCorrelator`] span, for bench
    /// harnesses that installed a clock. With a disabled profiler this is
    /// `detect` plus two branches.
    pub fn detect_profiled(
        &self,
        rx: &[Complex],
        profiler: &mut cellfi_obs::profile::Profiler,
    ) -> Detection {
        profiler.begin(cellfi_obs::profile::SpanId::PrachCorrelator);
        let d = self.detect(rx);
        profiler.end(cellfi_obs::profile::SpanId::PrachCorrelator);
        d
    }
}

/// The SNR above which the system simulations count an overheard client
/// ("we count only the users whose PRACH can be heard at −10 dB", §6.3.4).
pub const fn detection_threshold_snr() -> Db {
    Db(-10.0)
}

/// The neighbour-counting rule: an access point hears a client's PRACH
/// when the client's per-sample SNR at the AP is at least −10 dB.
pub fn heard(snr_at_ap: Db) -> bool {
    snr_at_ap.value() >= detection_threshold_snr().value()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn zc_sequences_have_unit_amplitude() {
        let root = zc_root(129);
        for c in &root {
            assert!((c.norm_sq() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn zc_ideal_autocorrelation() {
        // Periodic autocorrelation of a ZC root is zero at all non-zero lags.
        let root = zc_root(129);
        for lag in [1usize, 7, 100, 418] {
            let mut acc = Complex::default();
            for n in 0..N_ZC {
                acc = acc + root[(n + lag) % N_ZC] * root[n].conj();
            }
            assert!(
                acc.norm_sq() < 1e-12 * (N_ZC as f64).powi(2),
                "lag {lag}: {}",
                acc.norm_sq()
            );
        }
    }

    #[test]
    fn clean_preamble_detected_with_correct_shift() {
        let det = PrachDetector::new(129);
        let root = zc_root(129);
        for shift in [0usize, 13, 419, 800] {
            let tx = preamble(&root, shift);
            let d = det.detect(&tx);
            assert!(d.detected, "shift {shift} not detected");
            assert_eq!(d.shift, shift);
        }
    }

    #[test]
    fn time_offset_appears_as_shift_not_miss() {
        // The paper's key point: unknown timing does not break detection;
        // it only moves the peak.
        let det = PrachDetector::new(129);
        let root = zc_root(129);
        let tx = preamble(&root, 100);
        let mut r = rng(1);
        let rx = awgn_channel(&tx, 250, Db(20.0), &mut r);
        let d = det.detect(&rx);
        assert!(d.detected);
        assert_eq!(d.shift, (100 + 250) % N_ZC);
    }

    #[test]
    fn detects_reliably_at_minus_10_db() {
        // The paper (citing [21]) uses −10 dB as the reliable-detection
        // point; the 839-chip correlation gain (~29 dB) makes this easy.
        let det = PrachDetector::new(129);
        let root = zc_root(129);
        let mut r = rng(2);
        let mut hits = 0;
        let trials = 40;
        for t in 0..trials {
            let tx = preamble(&root, (t * 37) % N_ZC);
            let rx = awgn_channel(&tx, (t * 91) % N_ZC, detection_threshold_snr(), &mut r);
            if det.detect(&rx).detected {
                hits += 1;
            }
        }
        assert!(hits >= trials * 95 / 100, "hits {hits}/{trials}");
    }

    #[test]
    fn noise_only_rarely_fires() {
        let det = PrachDetector::new(129);
        let mut r = rng(3);
        let mut alarms = 0;
        for _ in 0..30 {
            let rx = noise_only(N_ZC, &mut r);
            if det.detect(&rx).detected {
                alarms += 1;
            }
        }
        assert_eq!(alarms, 0, "false alarms on pure noise");
    }

    #[test]
    fn misses_deeply_buried_preamble() {
        // At −30 dB even the correlation gain is not enough; detection
        // should mostly fail (sanity check that the test isn't vacuous).
        let det = PrachDetector::new(129);
        let root = zc_root(129);
        let mut r = rng(4);
        let mut hits = 0;
        for t in 0..20 {
            let tx = preamble(&root, (t * 11) % N_ZC);
            let rx = awgn_channel(&tx, 0, Db(-30.0), &mut r);
            if det.detect(&rx).detected {
                hits += 1;
            }
        }
        assert!(hits <= 4, "hits {hits} at -30 dB");
    }

    #[test]
    fn foreign_root_not_detected() {
        // A preamble built from a different root correlates flat — the
        // detector is root-specific, matching per-cell root planning.
        let det = PrachDetector::new(129);
        let other = zc_root(130);
        let tx = preamble(&other, 50);
        let d = det.detect(&tx);
        assert!(!d.detected, "cross-root PAR {}", d.peak_to_average);
    }

    #[test]
    fn fft_profile_matches_naive() {
        let det = PrachDetector::new(129);
        let root = zc_root(129);
        let mut r = rng(8);
        let rx = awgn_channel(&preamble(&root, 321), 77, Db(-5.0), &mut r);
        let fast = det.correlation_profile(&rx);
        let slow = det.correlation_profile_naive(&rx);
        let scale: f64 = slow.iter().sum::<f64>() / fast.iter().sum::<f64>();
        assert!((scale - 1.0).abs() < 1e-6, "global scale {scale}");
        for (i, (a, b)) in fast.iter().zip(&slow).enumerate() {
            assert!(
                (a - b).abs() <= 1e-6 * slow.iter().cloned().fold(0.0, f64::max),
                "bin {i}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn heard_rule_matches_paper_threshold() {
        assert!(heard(Db(-10.0)));
        assert!(heard(Db(0.0)));
        assert!(!heard(Db(-10.1)));
    }

    #[test]
    #[should_panic(expected = "root must be")]
    fn invalid_root_panics() {
        let _ = zc_root(0);
    }
}
