//! The OFDMA resource grid and CellFi subchannels.
//!
//! LTE divides the channel into resource blocks (RBs) of 12 subcarriers ×
//! 0.5 ms slots; scheduling operates on RB *pairs* over a 1 ms subframe
//! (180 kHz × 1 ms). A 5 MHz channel carries 25 RBs, 10 MHz 50, 15 MHz 75
//! and 20 MHz 100 (3GPP TS 36.211).
//!
//! CellFi schedules in terms of **subchannels** — "the minimal set of
//! resource blocks that can be scheduled in LTE and for which we can get
//! channel quality information" (§5). The paper gives the counts: **13
//! subchannels on 5 MHz and 25 on 20 MHz**, i.e. groups of 2 RBs on 5 MHz
//! (12 × 2 + 1 × 1) and 4 RBs on 20 MHz.
//!
//! This module also owns the RE-level throughput arithmetic: how many
//! resource elements a subframe of one RB offers for data after PDCCH,
//! CRS and sync/broadcast overheads.

use cellfi_types::units::Hertz;
use cellfi_types::SubchannelId;

/// LTE channel bandwidth options available to CellFi in a TV channel
/// (§3.1: "the LTE PHY ... allows for 5, 10, 15 and 20 MHz bandwidths").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelBandwidth {
    /// 5 MHz — 25 RBs. Fits inside one 6 MHz US TV channel. The paper's
    /// large-scale evaluation uses this.
    Mhz5,
    /// 10 MHz — 50 RBs.
    Mhz10,
    /// 15 MHz — 75 RBs.
    Mhz15,
    /// 20 MHz — 100 RBs.
    Mhz20,
}

impl ChannelBandwidth {
    /// Nominal channel bandwidth.
    pub fn bandwidth(self) -> Hertz {
        match self {
            ChannelBandwidth::Mhz5 => Hertz::from_mhz(5.0),
            ChannelBandwidth::Mhz10 => Hertz::from_mhz(10.0),
            ChannelBandwidth::Mhz15 => Hertz::from_mhz(15.0),
            ChannelBandwidth::Mhz20 => Hertz::from_mhz(20.0),
        }
    }

    /// Number of resource blocks (TS 36.211 table).
    pub fn resource_blocks(self) -> u32 {
        match self {
            ChannelBandwidth::Mhz5 => 25,
            ChannelBandwidth::Mhz10 => 50,
            ChannelBandwidth::Mhz15 => 75,
            ChannelBandwidth::Mhz20 => 100,
        }
    }

    /// Number of CellFi subchannels (paper §5: 13 on 5 MHz, 25 on 20 MHz;
    /// intermediate bandwidths use the same 2-RB / 4-RB grouping rule).
    pub fn subchannels(self) -> u32 {
        match self {
            ChannelBandwidth::Mhz5 => 13,  // 12×2 RB + 1×1 RB
            ChannelBandwidth::Mhz10 => 25, // 25×2 RB
            ChannelBandwidth::Mhz15 => 25, // 25×3 RB
            ChannelBandwidth::Mhz20 => 25, // 25×4 RB
        }
    }
}

/// One RB-pair is 12 subcarriers × 14 OFDM symbols (normal CP) = 168
/// resource elements per subframe.
pub const RES_PER_RB_SUBFRAME: u32 = 168;

/// Fraction of resource elements lost to overhead: PDCCH (up to 3 of 14
/// symbols), cell-specific reference signals, PSS/SSS/PBCH. ~29 % is the
/// standard planning figure for 2-antenna-port downlink.
pub const OVERHEAD_FRACTION: f64 = 0.29;

/// The resource grid of one cell's channel: RBs grouped into subchannels.
#[derive(Debug, Clone)]
pub struct ResourceGrid {
    bandwidth: ChannelBandwidth,
    /// `rb_of_subchannel[s]` is the list of RB indices in subchannel `s`.
    rb_of_subchannel: Vec<Vec<u32>>,
}

impl ResourceGrid {
    /// Build the grid for a channel bandwidth.
    pub fn new(bandwidth: ChannelBandwidth) -> ResourceGrid {
        let n_rb = bandwidth.resource_blocks();
        let n_sub = bandwidth.subchannels();
        // Distribute RBs over subchannels as evenly as possible, leading
        // subchannels take the larger groups (5 MHz: 12 groups of 2, then 1).
        let base = n_rb / n_sub;
        let extra = n_rb % n_sub;
        let mut rb_of_subchannel = Vec::with_capacity(n_sub as usize);
        let mut next_rb = 0;
        for s in 0..n_sub {
            let size = base + u32::from(s < extra);
            let rbs: Vec<u32> = (next_rb..next_rb + size).collect();
            next_rb += size;
            rb_of_subchannel.push(rbs);
        }
        debug_assert_eq!(next_rb, n_rb);
        ResourceGrid {
            bandwidth,
            rb_of_subchannel,
        }
    }

    /// The channel bandwidth this grid covers.
    pub fn bandwidth(&self) -> ChannelBandwidth {
        self.bandwidth
    }

    /// Number of subchannels.
    pub fn num_subchannels(&self) -> u32 {
        self.rb_of_subchannel.len() as u32
    }

    /// Iterator over all subchannel ids.
    pub fn subchannel_ids(&self) -> impl Iterator<Item = SubchannelId> {
        (0..self.num_subchannels()).map(SubchannelId::new)
    }

    /// RB indices composing `subchannel`.
    pub fn rbs_in(&self, subchannel: SubchannelId) -> &[u32] {
        &self.rb_of_subchannel[subchannel.index()]
    }

    /// Number of RBs in `subchannel`.
    pub fn rb_count(&self, subchannel: SubchannelId) -> u32 {
        self.rb_of_subchannel[subchannel.index()].len() as u32
    }

    /// Occupied bandwidth of one subchannel (RBs × 180 kHz).
    pub fn subchannel_bandwidth(&self, subchannel: SubchannelId) -> Hertz {
        Hertz::from_khz(180.0 * f64::from(self.rb_count(subchannel)))
    }

    /// Data-bearing resource elements per subframe in `subchannel`, after
    /// control/reference overhead.
    pub fn data_res_per_subframe(&self, subchannel: SubchannelId) -> f64 {
        f64::from(self.rb_count(subchannel) * RES_PER_RB_SUBFRAME) * (1.0 - OVERHEAD_FRACTION)
    }

    /// Data-bearing resource elements per subframe in the whole channel.
    pub fn total_data_res_per_subframe(&self) -> f64 {
        f64::from(self.bandwidth.resource_blocks() * RES_PER_RB_SUBFRAME)
            * (1.0 - OVERHEAD_FRACTION)
    }

    /// Fraction of the channel a set of subchannels occupies (in RBs).
    /// This is the quantity plotted in Fig 1(c).
    pub fn channel_fraction(&self, subchannels: &[SubchannelId]) -> f64 {
        let used: u32 = subchannels.iter().map(|&s| self.rb_count(s)).sum();
        f64::from(used) / f64::from(self.bandwidth.resource_blocks())
    }

    /// Downlink transmit power radiated *within one subchannel* when the
    /// cell's total power is `total`: an eNodeB spreads its power across
    /// all resource blocks, so a 2-RB subchannel of a 25-RB carrier gets
    /// `total − 10·log10(25/2)` dBm. (The uplink is different — a UE
    /// concentrates its whole power into its granted RBs, which is the
    /// OFDMA uplink advantage of §3.1.)
    pub fn subchannel_tx_power(
        &self,
        total: cellfi_types::units::Dbm,
        subchannel: SubchannelId,
    ) -> cellfi_types::units::Dbm {
        let frac =
            f64::from(self.rb_count(subchannel)) / f64::from(self.bandwidth.resource_blocks());
        total + cellfi_types::units::Db(10.0 * frac.log10())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rb_counts_match_3gpp_table() {
        assert_eq!(ChannelBandwidth::Mhz5.resource_blocks(), 25);
        assert_eq!(ChannelBandwidth::Mhz10.resource_blocks(), 50);
        assert_eq!(ChannelBandwidth::Mhz15.resource_blocks(), 75);
        assert_eq!(ChannelBandwidth::Mhz20.resource_blocks(), 100);
    }

    #[test]
    fn paper_subchannel_counts() {
        // §5: "13 such subchannels on 5 MHz and 25 subchannels on 20 MHz".
        assert_eq!(ChannelBandwidth::Mhz5.subchannels(), 13);
        assert_eq!(ChannelBandwidth::Mhz20.subchannels(), 25);
    }

    #[test]
    fn five_mhz_grouping_is_twelve_pairs_plus_one() {
        let g = ResourceGrid::new(ChannelBandwidth::Mhz5);
        let sizes: Vec<u32> = g.subchannel_ids().map(|s| g.rb_count(s)).collect();
        assert_eq!(sizes.len(), 13);
        assert_eq!(sizes.iter().filter(|&&s| s == 2).count(), 12);
        assert_eq!(sizes.iter().filter(|&&s| s == 1).count(), 1);
    }

    #[test]
    fn twenty_mhz_grouping_is_quads() {
        let g = ResourceGrid::new(ChannelBandwidth::Mhz20);
        assert!(g.subchannel_ids().all(|s| g.rb_count(s) == 4));
    }

    #[test]
    fn grids_partition_all_rbs_without_overlap() {
        for bw in [
            ChannelBandwidth::Mhz5,
            ChannelBandwidth::Mhz10,
            ChannelBandwidth::Mhz15,
            ChannelBandwidth::Mhz20,
        ] {
            let g = ResourceGrid::new(bw);
            let mut seen = vec![false; bw.resource_blocks() as usize];
            for s in g.subchannel_ids() {
                for &rb in g.rbs_in(s) {
                    assert!(!seen[rb as usize], "rb {rb} assigned twice in {bw:?}");
                    seen[rb as usize] = true;
                }
            }
            assert!(seen.iter().all(|&v| v), "unassigned RBs in {bw:?}");
        }
    }

    #[test]
    fn subchannel_bandwidth_is_rb_multiple() {
        let g = ResourceGrid::new(ChannelBandwidth::Mhz5);
        assert_eq!(g.subchannel_bandwidth(SubchannelId::new(0)).value(), 360e3);
        assert_eq!(g.subchannel_bandwidth(SubchannelId::new(12)).value(), 180e3);
    }

    #[test]
    fn data_res_reflects_overhead() {
        let g = ResourceGrid::new(ChannelBandwidth::Mhz5);
        let res = g.data_res_per_subframe(SubchannelId::new(0));
        assert!((res - 2.0 * 168.0 * 0.71).abs() < 1e-9);
    }

    #[test]
    fn peak_throughput_sanity() {
        // Peak DL on 5 MHz at max efficiency (5.5547 b/sym) should land in
        // the 16–17 Mbps ballpark — matching the ~15 Mbps TCP ceiling the
        // paper measured close to the cell (Fig 1a).
        let g = ResourceGrid::new(ChannelBandwidth::Mhz5);
        let bits_per_subframe = g.total_data_res_per_subframe() * 5.5547;
        let mbps = bits_per_subframe * 1000.0 / 1e6;
        assert!((15.0..18.5).contains(&mbps), "peak {mbps} Mbps");
    }

    #[test]
    fn subchannel_power_split() {
        use cellfi_types::units::Dbm;
        let g = ResourceGrid::new(ChannelBandwidth::Mhz5);
        // 2-RB subchannel: 30 − 10·log10(25/2) ≈ 19.0 dBm.
        let p2 = g.subchannel_tx_power(Dbm(30.0), SubchannelId::new(0));
        assert!((p2.value() - 19.03).abs() < 0.02, "got {p2}");
        // 1-RB subchannel: 30 − 10·log10(25) ≈ 16.0 dBm.
        let p1 = g.subchannel_tx_power(Dbm(30.0), SubchannelId::new(12));
        assert!((p1.value() - 16.02).abs() < 0.02, "got {p1}");
        // Sum over all subchannels returns the total power.
        let total_mw: f64 = g
            .subchannel_ids()
            .map(|s| g.subchannel_tx_power(Dbm(30.0), s).to_milliwatts().value())
            .sum();
        assert!((10.0 * total_mw.log10() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn channel_fraction_single_rb_uplink() {
        // Fig 1(c): a TCP-ACK uplink fits in one RB = 1/25 of the channel.
        let g = ResourceGrid::new(ChannelBandwidth::Mhz5);
        let frac = g.channel_fraction(&[SubchannelId::new(12)]);
        assert!((frac - 0.04).abs() < 1e-9);
        let all: Vec<_> = g.subchannel_ids().collect();
        assert!((g.channel_fraction(&all) - 1.0).abs() < 1e-9);
    }
}
