//! Minimal DSP kernel: FFTs for the PRACH correlator.
//!
//! The paper's PRACH detector claim ("overall, it is 16 times faster
//! than the required line rate", §6.3.3) needs the circular correlation
//! computed in the frequency domain. The ZC sequence length is 839 — a
//! prime — so a plain radix-2 FFT does not apply; we use **Bluestein's
//! algorithm**, which re-expresses an arbitrary-length DFT as a linear
//! convolution that *can* be done with power-of-two FFTs:
//!
//! `X[k] = b*[k] · Σ_n (x[n]·b*[n]) · b[k−n]`, with the chirp
//! `b[n] = e^{jπ n²/N}`.
//!
//! Everything here is self-contained (the workspace carries no numerics
//! dependency) and checked against naive DFTs in the tests.
//!
//! Hot paths plan ahead: [`Pow2Plan`] precomputes the bit-reversal
//! permutation and twiddle tables of a radix-2 FFT, and the process-wide
//! caches [`pow2_plan`] / [`bluestein_plan`] hand out shared plans per
//! length so repeated detector construction never rebuilds them.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// A complex sample. Local minimal implementation — the workspace has no
/// numerics dependency; the FFTs and the PRACH detector need only
/// mul/add/conj/abs².
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Construct.
    pub const fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    /// `e^{jθ}`.
    pub fn cis(theta: f64) -> Complex {
        Complex::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    pub fn conj(self) -> Complex {
        Complex::new(self.re, -self.im)
    }

    /// Squared magnitude.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Scale by a real factor.
    pub fn scale(self, s: f64) -> Complex {
        Complex::new(self.re * s, self.im * s)
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;

    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;

    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

/// In-place iterative radix-2 Cooley–Tukey FFT. `data.len()` must be a
/// power of two. `inverse` selects the IDFT (including the 1/N scale).
pub fn fft_pow2(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(
        n.is_power_of_two(),
        "radix-2 FFT needs a power of two, got {n}"
    );
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = data[start + k + len / 2] * w;
                data[start + k] = u + v;
                data[start + k + len / 2] = u + v.scale(-1.0);
                w = w * wlen;
            }
        }
        len <<= 1;
    }
    if inverse {
        let scale = 1.0 / n as f64;
        for c in data.iter_mut() {
            *c = c.scale(scale);
        }
    }
}

/// Precomputed radix-2 FFT plan: bit-reversal permutation and twiddle
/// factors are built once, so each transform is butterflies only. For
/// PRACH-sized transforms this roughly halves the cost of [`fft_pow2`],
/// which regenerates twiddles by recurrence on every call.
#[derive(Debug)]
pub struct Pow2Plan {
    n: usize,
    /// `bitrev[i]` = bit-reversed index of `i`.
    bitrev: Vec<u32>,
    /// Forward twiddles `e^{−j2πk/n}` for `k < n/2`; stage `len` reads
    /// them at stride `n/len`. Inverse transforms conjugate on the fly.
    twiddle: Vec<Complex>,
}

impl Pow2Plan {
    /// Build a plan for a power-of-two length `n`.
    pub fn new(n: usize) -> Pow2Plan {
        assert!(
            n.is_power_of_two(),
            "radix-2 FFT needs a power of two, got {n}"
        );
        let mut bitrev = vec![0u32; n];
        for i in 1..n {
            bitrev[i] = (bitrev[i >> 1] >> 1) | if i & 1 == 1 { (n >> 1) as u32 } else { 0 };
        }
        let twiddle = (0..n / 2)
            .map(|k| Complex::cis(-2.0 * std::f64::consts::PI * k as f64 / n as f64))
            .collect();
        Pow2Plan { n, bitrev, twiddle }
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Plans are never empty (n ≥ 1).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// In-place FFT (or IDFT with 1/N scaling when `inverse`). Same
    /// contract as [`fft_pow2`] but with the permutation and twiddles
    /// read from the precomputed tables.
    pub fn fft(&self, data: &mut [Complex], inverse: bool) {
        let n = self.n;
        assert_eq!(data.len(), n, "input length must match plan");
        if n <= 1 {
            return;
        }
        for i in 1..n {
            let j = self.bitrev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stride = n / len;
            for start in (0..n).step_by(len) {
                for k in 0..half {
                    let mut w = self.twiddle[k * stride];
                    if inverse {
                        w = w.conj();
                    }
                    let u = data[start + k];
                    let v = data[start + k + half] * w;
                    data[start + k] = u + v;
                    data[start + k + half] = u + v.scale(-1.0);
                }
            }
            len <<= 1;
        }
        if inverse {
            let scale = 1.0 / n as f64;
            for c in data.iter_mut() {
                *c = c.scale(scale);
            }
        }
    }
}

/// Process-wide plan cache: one shared [`Pow2Plan`] per length.
pub fn pow2_plan(n: usize) -> Arc<Pow2Plan> {
    static CACHE: OnceLock<Mutex<BTreeMap<usize, Arc<Pow2Plan>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(Default::default);
    let mut map = cache.lock().expect("plan cache poisoned");
    Arc::clone(map.entry(n).or_insert_with(|| Arc::new(Pow2Plan::new(n))))
}

/// Process-wide plan cache: one shared [`BluesteinPlan`] per length.
pub fn bluestein_plan(n: usize) -> Arc<BluesteinPlan> {
    static CACHE: OnceLock<Mutex<BTreeMap<usize, Arc<BluesteinPlan>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(Default::default);
    let mut map = cache.lock().expect("plan cache poisoned");
    Arc::clone(
        map.entry(n)
            .or_insert_with(|| Arc::new(BluesteinPlan::new(n))),
    )
}

/// Precomputed Bluestein plan for DFTs of arbitrary length `n`.
#[derive(Debug, Clone)]
pub struct BluesteinPlan {
    n: usize,
    m: usize,
    /// Shared radix-2 plan for the length-`m` convolution FFTs.
    pow2: Arc<Pow2Plan>,
    /// Chirp b[k] = e^{jπ k²/n}.
    chirp: Vec<Complex>,
    /// FFT of the zero-padded chirp filter (forward direction).
    filter_fft_fwd: Vec<Complex>,
    /// FFT of the conjugate-chirp filter (inverse direction).
    filter_fft_inv: Vec<Complex>,
}

impl BluesteinPlan {
    /// Build a plan for length `n`.
    pub fn new(n: usize) -> BluesteinPlan {
        assert!(n >= 1);
        let m = (2 * n - 1).next_power_of_two();
        let pow2 = pow2_plan(m);
        let chirp: Vec<Complex> = (0..n)
            .map(|k| {
                // k² mod 2n keeps the angle argument small and exact.
                let k2 = (k * k) % (2 * n);
                Complex::cis(std::f64::consts::PI * k2 as f64 / n as f64)
            })
            .collect();
        let build_filter = |conj: bool| -> Vec<Complex> {
            let mut f = vec![Complex::default(); m];
            for k in 0..n {
                let c = if conj { chirp[k].conj() } else { chirp[k] };
                // The convolution kernel is b[|i-j|]: symmetric wrap.
                f[k] = c;
                if k != 0 {
                    f[m - k] = c;
                }
            }
            pow2.fft(&mut f, false);
            f
        };
        // Forward DFT uses e^{-j...}: kernel b[k] with the *conjugate*
        // chirp pre/post multiply; inverse swaps roles.
        let filter_fft_fwd = build_filter(false);
        let filter_fft_inv = build_filter(true);
        BluesteinPlan {
            n,
            m,
            pow2,
            chirp,
            filter_fft_fwd,
            filter_fft_inv,
        }
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Plans are never empty (n ≥ 1).
    pub fn is_empty(&self) -> bool {
        false
    }

    fn transform(&self, input: &[Complex], inverse: bool) -> Vec<Complex> {
        assert_eq!(input.len(), self.n, "input length must match plan");
        let (pre_conj, filter) = if inverse {
            (false, &self.filter_fft_inv)
        } else {
            (true, &self.filter_fft_fwd)
        };
        // y[k] = x[k] · b^{∓}[k], zero-padded to m.
        let mut y = vec![Complex::default(); self.m];
        for k in 0..self.n {
            let c = if pre_conj {
                self.chirp[k].conj()
            } else {
                self.chirp[k]
            };
            y[k] = input[k] * c;
        }
        self.pow2.fft(&mut y, false);
        for (yk, fk) in y.iter_mut().zip(filter.iter()) {
            *yk = *yk * *fk;
        }
        self.pow2.fft(&mut y, true);
        // Post-multiply by the same chirp factor and trim (the chirp
        // table has length n, so the zip drops the padding tail of y).
        let mut out = Vec::with_capacity(self.n);
        for (yk, ck) in y.iter().zip(self.chirp.iter()) {
            let c = if pre_conj { ck.conj() } else { *ck };
            out.push(*yk * c);
        }
        if inverse {
            let scale = 1.0 / self.n as f64;
            for c in out.iter_mut() {
                *c = c.scale(scale);
            }
        }
        out
    }

    /// Forward DFT of arbitrary length: `X[k] = Σ_n x[n]·e^{−j2πkn/N}`.
    pub fn dft(&self, input: &[Complex]) -> Vec<Complex> {
        self.transform(input, false)
    }

    /// Inverse DFT (with 1/N scaling).
    pub fn idft(&self, input: &[Complex]) -> Vec<Complex> {
        self.transform(input, true)
    }
}

/// Naive O(N²) DFT, the reference the tests check Bluestein against.
pub fn dft_naive(input: &[Complex], inverse: bool) -> Vec<Complex> {
    let n = input.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let mut acc = Complex::default();
        for (i, x) in input.iter().enumerate() {
            let ang = sign * 2.0 * std::f64::consts::PI * (k * i % n) as f64 / n as f64;
            acc = acc + *x * Complex::cis(ang);
        }
        out.push(if inverse {
            acc.scale(1.0 / n as f64)
        } else {
            acc
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;

    fn random_signal(n: usize, seed: u64) -> Vec<Complex> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect()
    }

    fn max_err(a: &[Complex], b: &[Complex]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| ((x.re - y.re).powi(2) + (x.im - y.im).powi(2)).sqrt())
            .fold(0.0, f64::max)
    }

    #[test]
    fn fft_matches_naive_dft() {
        for n in [2usize, 8, 64, 256] {
            let x = random_signal(n, 1);
            let mut y = x.clone();
            fft_pow2(&mut y, false);
            let reference = dft_naive(&x, false);
            assert!(max_err(&y, &reference) < 1e-9 * n as f64, "n={n}");
        }
    }

    #[test]
    fn fft_round_trips() {
        let x = random_signal(128, 2);
        let mut y = x.clone();
        fft_pow2(&mut y, false);
        fft_pow2(&mut y, true);
        assert!(max_err(&x, &y) < 1e-10);
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut x = vec![Complex::default(); 16];
        x[0] = Complex::new(1.0, 0.0);
        fft_pow2(&mut x, false);
        for c in &x {
            assert!((c.re - 1.0).abs() < 1e-12 && c.im.abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let mut x = vec![Complex::default(); 12];
        fft_pow2(&mut x, false);
    }

    #[test]
    fn pow2_plan_matches_plain_fft() {
        for n in [1usize, 2, 8, 64, 512, 2048] {
            let plan = Pow2Plan::new(n);
            let x = random_signal(n, n as u64 + 17);
            let mut fast = x.clone();
            plan.fft(&mut fast, false);
            let mut plain = x.clone();
            fft_pow2(&mut plain, false);
            assert!(max_err(&fast, &plain) < 1e-9 * n.max(1) as f64, "n={n}");
            plan.fft(&mut fast, true);
            assert!(max_err(&fast, &x) < 1e-10, "round trip n={n}");
        }
    }

    #[test]
    fn plan_caches_share_one_plan_per_length() {
        let a = pow2_plan(1024);
        let b = pow2_plan(1024);
        assert!(std::sync::Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 1024);
        let c = bluestein_plan(839);
        let d = bluestein_plan(839);
        assert!(std::sync::Arc::ptr_eq(&c, &d));
        assert_eq!(c.len(), 839);
    }

    #[test]
    fn bluestein_matches_naive_for_prime_lengths() {
        for n in [3usize, 7, 17, 101, 839] {
            let plan = BluesteinPlan::new(n);
            let x = random_signal(n, n as u64);
            let fast = plan.dft(&x);
            let slow = dft_naive(&x, false);
            assert!(
                max_err(&fast, &slow) < 1e-7 * n as f64,
                "n={n}, err={}",
                max_err(&fast, &slow)
            );
        }
    }

    #[test]
    fn bluestein_round_trips() {
        let plan = BluesteinPlan::new(839);
        let x = random_signal(839, 9);
        let back = plan.idft(&plan.dft(&x));
        assert!(max_err(&x, &back) < 1e-8);
    }

    #[test]
    fn bluestein_composite_lengths_work_too() {
        for n in [6usize, 100, 360] {
            let plan = BluesteinPlan::new(n);
            let x = random_signal(n, n as u64 + 1);
            assert!(max_err(&plan.dft(&x), &dft_naive(&x, false)) < 1e-8 * n as f64);
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let plan = BluesteinPlan::new(839);
        let x = random_signal(839, 4);
        let spectrum = plan.dft(&x);
        let e_time: f64 = x.iter().map(|c| c.norm_sq()).sum();
        let e_freq: f64 = spectrum.iter().map(|c| c.norm_sq()).sum::<f64>() / 839.0;
        assert!((e_time - e_freq).abs() / e_time < 1e-9);
    }
}
