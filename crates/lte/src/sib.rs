//! System information broadcast (SIB).
//!
//! The SIB is the control-plane hook CellFi uses to stay TVWS-compliant
//! without modifying clients (§4.2): the access point "announces the
//! uplink frequency in the LTE SIB control message" and "the maximum
//! transmit powers ... also gets communicated to the clients through SIB
//! messages". Clients may only transmit on the announced uplink frequency
//! at or below the announced power — which is what makes instant vacate
//! work: once the AP stops broadcasting grants, clients fall silent.

use crate::earfcn::Earfcn;
use cellfi_types::time::Instant;
use cellfi_types::units::Dbm;

/// The subset of SIB1/SIB2 content CellFi manipulates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemInformation {
    /// When this SIB revision was broadcast.
    pub revised_at: Instant,
    /// Downlink carrier (the cell's own EARFCN).
    pub downlink: Earfcn,
    /// Uplink carrier announced to clients (equal to downlink in TDD).
    pub uplink: Earfcn,
    /// Maximum client transmit power (p-Max), set from the spectrum
    /// database grant — 20 dBm under TVWS client rules.
    pub max_ue_power: Dbm,
    /// Whether the cell is accepting new connections (cell barred flag,
    /// flipped while vacating a channel).
    pub barred: bool,
}

impl SystemInformation {
    /// A TDD SIB: uplink equals downlink carrier.
    pub fn tdd(revised_at: Instant, carrier: Earfcn, max_ue_power: Dbm) -> SystemInformation {
        SystemInformation {
            revised_at,
            downlink: carrier,
            uplink: carrier,
            max_ue_power,
            barred: false,
        }
    }

    /// Whether a client transmission at `power` on `carrier` is permitted
    /// by this SIB. This is the compliance predicate the spectrum tests
    /// assert: no grant, no transmission.
    pub fn permits_uplink(&self, carrier: Earfcn, power: Dbm) -> bool {
        !self.barred && carrier == self.uplink && power.value() <= self.max_ue_power.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::earfcn::Band;

    fn sib() -> SystemInformation {
        let carrier = Earfcn::new(Band::Tvws, 100_500);
        SystemInformation::tdd(Instant::ZERO, carrier, Dbm(20.0))
    }

    #[test]
    fn tdd_sib_uses_one_carrier() {
        let s = sib();
        assert_eq!(s.downlink, s.uplink);
    }

    #[test]
    fn permits_compliant_uplink() {
        let s = sib();
        assert!(s.permits_uplink(s.uplink, Dbm(20.0)));
        assert!(s.permits_uplink(s.uplink, Dbm(10.0)));
    }

    #[test]
    fn rejects_overpowered_uplink() {
        // TVWS client cap is 20 dBm (§3.1) — 23 dBm must be refused.
        let s = sib();
        assert!(!s.permits_uplink(s.uplink, Dbm(23.0)));
    }

    #[test]
    fn rejects_wrong_carrier() {
        let s = sib();
        let other = Earfcn::new(Band::Tvws, 100_600);
        assert!(!s.permits_uplink(other, Dbm(10.0)));
    }

    #[test]
    fn barred_cell_permits_nothing() {
        let mut s = sib();
        s.barred = true;
        assert!(!s.permits_uplink(s.uplink, Dbm(10.0)));
    }
}
