//! TDD frame structure (frame type 2).
//!
//! CellFi runs TDD so that a single TV channel serves both directions
//! (§4.1) — that is why the access point carries a GPS clock: interfering
//! networks must agree on the uplink/downlink switch points or they
//! desense each other. The 10 ms radio frame is divided into ten 1 ms
//! subframes whose direction follows one of seven standard configurations
//! (TS 36.211 table 4.2-2).
//!
//! The paper selects **configuration 4**: "7 downlink (7 ms) and 2 uplink
//! (2 ms) subframes in every 10 ms frame" (§6.3.4) — counting the special
//! subframe's DwPTS as downlink capacity.

use cellfi_types::time::Instant;

/// Direction of one subframe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubframeKind {
    /// Downlink subframe.
    Downlink,
    /// Uplink subframe.
    Uplink,
    /// Special subframe (DwPTS/GP/UpPTS). Counted as downlink capacity
    /// with a reduced payload (DwPTS carries most of it).
    Special,
}

/// A TDD uplink–downlink configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TddConfig {
    index: u8,
    pattern: [SubframeKind; 10],
}

use SubframeKind::{Downlink as D, Special as S, Uplink as U};

/// TS 36.211 table 4.2-2, configurations 0–6.
const CONFIGS: [[SubframeKind; 10]; 7] = [
    [D, S, U, U, U, D, S, U, U, U], // 0
    [D, S, U, U, D, D, S, U, U, D], // 1
    [D, S, U, D, D, D, S, U, D, D], // 2
    [D, S, U, U, U, D, D, D, D, D], // 3
    [D, S, U, U, D, D, D, D, D, D], // 4  <- the paper's choice
    [D, S, U, D, D, D, D, D, D, D], // 5
    [D, S, U, U, U, D, S, U, U, D], // 6
];

/// Fraction of a special subframe usable for downlink data (DwPTS with
/// the common 10:2:2 split ≈ 0.7 of a normal subframe).
pub const SPECIAL_DL_FRACTION: f64 = 0.7;

impl TddConfig {
    /// Construct configuration `index` (0–6).
    pub fn new(index: u8) -> TddConfig {
        assert!(index <= 6, "TDD configuration must be 0–6, got {index}");
        TddConfig {
            index,
            pattern: CONFIGS[index as usize],
        }
    }

    /// The paper's configuration: 4.
    pub fn paper_default() -> TddConfig {
        TddConfig::new(4)
    }

    /// Configuration index.
    pub fn index(&self) -> u8 {
        self.index
    }

    /// The 10-subframe direction pattern.
    pub fn pattern(&self) -> &[SubframeKind; 10] {
        &self.pattern
    }

    /// Direction of the subframe at `now` (subframes are 1 ms).
    pub fn subframe_kind(&self, now: Instant) -> SubframeKind {
        self.pattern[(now.as_millis() % 10) as usize]
    }

    /// True when the subframe at `now` carries downlink data (normal DL or
    /// the special subframe's DwPTS).
    pub fn is_downlink(&self, now: Instant) -> bool {
        !matches!(self.subframe_kind(now), SubframeKind::Uplink)
    }

    /// True when the subframe at `now` carries uplink data.
    pub fn is_uplink(&self, now: Instant) -> bool {
        matches!(self.subframe_kind(now), SubframeKind::Uplink)
    }

    /// Downlink capacity fraction of the frame, counting special subframes
    /// at [`SPECIAL_DL_FRACTION`].
    pub fn dl_fraction(&self) -> f64 {
        self.pattern
            .iter()
            .map(|k| match k {
                SubframeKind::Downlink => 1.0,
                SubframeKind::Special => SPECIAL_DL_FRACTION,
                SubframeKind::Uplink => 0.0,
            })
            .sum::<f64>()
            / 10.0
    }

    /// Uplink capacity fraction of the frame.
    pub fn ul_fraction(&self) -> f64 {
        self.pattern
            .iter()
            .filter(|k| matches!(k, SubframeKind::Uplink))
            .count() as f64
            / 10.0
    }

    /// Per-subframe relative downlink capacity (1.0 for DL, the DwPTS
    /// fraction for special, 0 for UL).
    pub fn dl_capacity(&self, now: Instant) -> f64 {
        match self.subframe_kind(now) {
            SubframeKind::Downlink => 1.0,
            SubframeKind::Special => SPECIAL_DL_FRACTION,
            SubframeKind::Uplink => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config4_matches_paper_counts() {
        // "7 downlink (7ms) and 2 uplink (2ms) subframes in every 10ms
        // frame" — 6 D + 1 S counted as DL, 2 U, per §6.3.4.
        let c = TddConfig::paper_default();
        let dl = c
            .pattern()
            .iter()
            .filter(|k| !matches!(k, SubframeKind::Uplink))
            .count();
        let ul = c
            .pattern()
            .iter()
            .filter(|k| matches!(k, SubframeKind::Uplink))
            .count();
        assert_eq!(dl, 8); // 7 full DL-capable + 1 special; see ul below
        assert_eq!(ul, 2);
    }

    #[test]
    fn all_configs_start_dl_special_ul() {
        // Every standard config begins D, S, U.
        for i in 0..=6u8 {
            let c = TddConfig::new(i);
            assert_eq!(c.pattern()[0], SubframeKind::Downlink);
            assert_eq!(c.pattern()[1], SubframeKind::Special);
            assert_eq!(c.pattern()[2], SubframeKind::Uplink);
        }
    }

    #[test]
    fn subframe_kind_cycles_every_frame() {
        let c = TddConfig::paper_default();
        for ms in 0..40u64 {
            let a = c.subframe_kind(Instant::from_millis(ms));
            let b = c.subframe_kind(Instant::from_millis(ms + 10));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn config4_direction_queries() {
        let c = TddConfig::paper_default();
        assert!(c.is_downlink(Instant::from_millis(0)));
        assert!(c.is_downlink(Instant::from_millis(1))); // special counts as DL
        assert!(c.is_uplink(Instant::from_millis(2)));
        assert!(c.is_uplink(Instant::from_millis(3)));
        for ms in 4..10 {
            assert!(c.is_downlink(Instant::from_millis(ms)), "sf {ms}");
        }
    }

    #[test]
    fn dl_fraction_config4_near_paper_seven_tenths() {
        let c = TddConfig::paper_default();
        // 7 full DL + 0.7 (DwPTS) = 7.7 of 10; the paper counts "7 ms" DL.
        assert!((c.dl_fraction() - 0.77).abs() < 1e-9);
        assert!((c.ul_fraction() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn config0_is_uplink_heavy() {
        let c = TddConfig::new(0);
        assert!(c.ul_fraction() > c.dl_fraction());
    }

    #[test]
    fn dl_capacity_values() {
        let c = TddConfig::paper_default();
        assert_eq!(c.dl_capacity(Instant::from_millis(0)), 1.0);
        assert_eq!(c.dl_capacity(Instant::from_millis(1)), SPECIAL_DL_FRACTION);
        assert_eq!(c.dl_capacity(Instant::from_millis(2)), 0.0);
    }

    #[test]
    #[should_panic(expected = "TDD configuration must be 0–6")]
    fn invalid_config_panics() {
        let _ = TddConfig::new(7);
    }
}
