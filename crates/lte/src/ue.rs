//! The mobile client (UE) state machine.
//!
//! CellFi works with *unmodified* clients (§7 "Ease of deployability"),
//! so this model only captures stock LTE behaviour — which happens to be
//! exactly what makes CellFi TVWS-compliant on the client side (§4.2):
//!
//! * a UE transmits only when granted by its serving cell, on the uplink
//!   carrier and at or below the power announced in the SIB;
//! * when the cell stops transmitting, the UE stops *instantly* (no grant,
//!   no transmission) and falls back to cell search;
//! * cell search across many wide bands is slow — the paper measured 56 s
//!   to reconnect (Fig 6), dominated by scanning unused LTE bands.

use crate::sib::SystemInformation;
use cellfi_types::time::{Duration, Instant};
use cellfi_types::units::Dbm;
use cellfi_types::{ApId, UeId};

/// RRC-level connection state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RrcState {
    /// Powered but with no cell: scanning frequencies.
    Searching {
        /// When the search started.
        since: Instant,
    },
    /// Found a cell; performing random access + RRC setup.
    Connecting {
        /// Target cell.
        cell: ApId,
        /// When the RACH started.
        since: Instant,
    },
    /// Attached and able to exchange data.
    Connected {
        /// Serving cell.
        cell: ApId,
    },
}

/// Timing constants measured in the paper's Fig 6 experiment.
#[derive(Debug, Clone, Copy)]
pub struct UeTimings {
    /// Full multi-band cell search ("it has to perform cell search on
    /// various frequencies in multiple LTE bands"): 56 s measured.
    pub cell_search: Duration,
    /// RACH + RRC connection setup once a cell is found.
    pub connection_setup: Duration,
}

impl UeTimings {
    /// The paper's measured values.
    pub fn paper_measured() -> UeTimings {
        UeTimings {
            cell_search: Duration::from_secs(56),
            connection_setup: Duration::from_millis(200),
        }
    }

    /// Timings with unused bands disabled — the paper notes search "can be
    /// further reduced by disabling unused LTE bands".
    pub fn single_band() -> UeTimings {
        UeTimings {
            cell_search: Duration::from_secs(3),
            connection_setup: Duration::from_millis(200),
        }
    }
}

/// A mobile client.
#[derive(Debug, Clone)]
pub struct Ue {
    /// Identity.
    pub id: UeId,
    /// Maximum transmit power — capped at 20 dBm by TVWS client rules.
    pub max_tx_power: Dbm,
    timings: UeTimings,
    state: RrcState,
}

impl Ue {
    /// A TVWS-compliant UE starting its search at `now`.
    pub fn new(id: UeId, timings: UeTimings, now: Instant) -> Ue {
        Ue {
            id,
            max_tx_power: Dbm(20.0),
            timings,
            state: RrcState::Searching { since: now },
        }
    }

    /// Current state.
    pub fn state(&self) -> RrcState {
        self.state
    }

    /// Serving cell when connected.
    pub fn serving_cell(&self) -> Option<ApId> {
        match self.state {
            RrcState::Connected { cell } => Some(cell),
            RrcState::Connecting { .. } | RrcState::Searching { .. } => None,
        }
    }

    /// Whether the multi-band scan would have found a radiating cell by
    /// `now` (the scan must run its full course before the UE can camp).
    pub fn search_complete(&self, now: Instant) -> bool {
        match self.state {
            RrcState::Searching { since } => now.duration_since(since) >= self.timings.cell_search,
            _ => false,
        }
    }

    /// The scan finished and found `cell`: begin random access.
    pub fn cell_found(&mut self, cell: ApId, now: Instant) {
        assert!(
            matches!(self.state, RrcState::Searching { .. }),
            "cell_found outside Searching"
        );
        self.state = RrcState::Connecting { cell, since: now };
    }

    /// Whether RACH + RRC setup has completed by `now`.
    pub fn setup_complete(&self, now: Instant) -> bool {
        match self.state {
            RrcState::Connecting { since, .. } => {
                now.duration_since(since) >= self.timings.connection_setup
            }
            _ => false,
        }
    }

    /// Finish attachment.
    ///
    /// # Panics
    /// If the UE is not in `Connecting`: the RRC state machine makes
    /// that transition impossible, so reaching it is engine corruption.
    pub fn attach_complete(&mut self) {
        let RrcState::Connecting { cell, .. } = self.state else {
            // cellfi-lint: allow(panic) — RRC contract violation is a
            // programming error; silently ignoring it would let a UE
            // "connect" to a cell it never set up with.
            panic!("attach_complete outside Connecting");
        };
        self.state = RrcState::Connected { cell };
    }

    /// The serving cell vanished (radio off / lease lost): the UE stops
    /// transmitting immediately and re-enters search.
    pub fn lost_cell(&mut self, now: Instant) {
        self.state = RrcState::Searching { since: now };
    }

    /// TVWS compliance predicate: may this UE transmit `power` uplink
    /// given its serving cell's SIB? Encodes the §4.2 argument — an LTE
    /// client cannot transmit without a valid grant from a radiating cell.
    pub fn may_transmit(&self, sib: Option<&SystemInformation>, power: Dbm) -> bool {
        match (self.state, sib) {
            (RrcState::Connected { .. }, Some(sib)) => {
                power.value() <= self.max_tx_power.value() && sib.permits_uplink(sib.uplink, power)
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::earfcn::{Band, Earfcn};

    fn sib() -> SystemInformation {
        SystemInformation::tdd(Instant::ZERO, Earfcn::new(Band::Tvws, 100_500), Dbm(20.0))
    }

    fn connected_ue() -> Ue {
        let mut ue = Ue::new(UeId::new(0), UeTimings::single_band(), Instant::ZERO);
        ue.cell_found(ApId::new(0), Instant::from_secs(3));
        ue.attach_complete();
        ue
    }

    #[test]
    fn lifecycle_search_connect_attach() {
        let t = UeTimings::paper_measured();
        let mut ue = Ue::new(UeId::new(0), t, Instant::ZERO);
        assert!(matches!(ue.state(), RrcState::Searching { .. }));
        // Search is not done before 56 s.
        assert!(!ue.search_complete(Instant::from_secs(55)));
        assert!(ue.search_complete(Instant::from_secs(56)));
        ue.cell_found(ApId::new(3), Instant::from_secs(56));
        assert!(!ue.setup_complete(Instant::from_secs(56)));
        assert!(ue.setup_complete(Instant::from_millis(56_200)));
        ue.attach_complete();
        assert_eq!(ue.serving_cell(), Some(ApId::new(3)));
    }

    #[test]
    fn paper_reconnect_time_is_56s_search() {
        assert_eq!(
            UeTimings::paper_measured().cell_search,
            Duration::from_secs(56)
        );
    }

    #[test]
    fn connected_ue_may_transmit_within_cap() {
        let ue = connected_ue();
        let sib = sib();
        assert!(ue.may_transmit(Some(&sib), Dbm(20.0)));
        assert!(ue.may_transmit(Some(&sib), Dbm(5.0)));
    }

    #[test]
    fn tvws_power_cap_enforced() {
        let ue = connected_ue();
        let mut generous = sib();
        generous.max_ue_power = Dbm(30.0); // even if the SIB allowed more,
        assert!(!ue.may_transmit(Some(&generous), Dbm(23.0))); // the UE caps at 20.
    }

    #[test]
    fn no_sib_means_silence() {
        // The §4.2 compliance property: radio off ⇒ clients instantly mute.
        let ue = connected_ue();
        assert!(!ue.may_transmit(None, Dbm(10.0)));
    }

    #[test]
    fn searching_ue_never_transmits() {
        let ue = Ue::new(UeId::new(1), UeTimings::single_band(), Instant::ZERO);
        assert!(!ue.may_transmit(Some(&sib()), Dbm(10.0)));
    }

    #[test]
    fn lost_cell_restarts_search() {
        let mut ue = connected_ue();
        ue.lost_cell(Instant::from_secs(100));
        assert!(matches!(ue.state(), RrcState::Searching { .. }));
        assert!(!ue.search_complete(Instant::from_secs(101)));
        assert!(!ue.may_transmit(Some(&sib()), Dbm(10.0)));
    }

    #[test]
    #[should_panic(expected = "cell_found outside Searching")]
    fn cell_found_requires_searching() {
        let mut ue = connected_ue();
        ue.cell_found(ApId::new(1), Instant::from_secs(5));
    }
}
