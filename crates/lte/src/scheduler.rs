//! Downlink schedulers over an allowed-subchannel mask.
//!
//! CellFi deliberately does *not* modify the LTE scheduler: "once the
//! interference management component decides which resource block a
//! scheduler can use, it informs the scheduler using standard interfaces.
//! The scheduler is free to schedule any client in any of the resource
//! blocks made available" (§4.3). This module is that standard scheduler:
//! proportional-fair (the common vendor default) and round-robin, both
//! operating only on subchannels enabled in the mask supplied each
//! subframe.
//!
//! The scheduler also produces the bookkeeping CellFi's bucket updates
//! need: which UE was served on which subchannel (the engine aggregates
//! this into `frac_j`, the fraction of time client `j` was scheduled on a
//! subchannel during the last epoch, §5.3).

use cellfi_types::{SubchannelId, UeId};
use std::collections::BTreeMap;

/// Scheduler discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Proportional fair: maximize instantaneous rate / average rate.
    ProportionalFair,
    /// Round robin over backlogged UEs.
    RoundRobin,
}

/// Scheduling input for one UE in one subframe.
#[derive(Debug, Clone)]
pub struct UeDemand {
    /// The UE.
    pub ue: UeId,
    /// Bits waiting in its downlink queue.
    pub backlog_bits: u64,
    /// Achievable bits this subframe on each subchannel (0 where the UE
    /// cannot decode).
    pub rate_per_subchannel: Vec<f64>,
}

/// The per-subframe allocation: which UE owns each subchannel.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// `assignment[s]` is the UE scheduled on subchannel `s`, if any.
    pub assignment: Vec<Option<UeId>>,
}

impl Allocation {
    /// Subchannels assigned to `ue`.
    pub fn subchannels_of(&self, ue: UeId) -> Vec<SubchannelId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, &u)| u == Some(ue))
            .map(|(s, _)| SubchannelId::new(s as u32))
            .collect()
    }

    /// Number of assigned subchannels.
    pub fn used_count(&self) -> usize {
        self.assignment.iter().filter(|a| a.is_some()).count()
    }
}

/// A downlink scheduler instance (one per cell).
#[derive(Debug, Clone)]
pub struct Scheduler {
    kind: SchedulerKind,
    /// EWMA of served rate per UE (bits/subframe), the PF denominator.
    avg_rate: BTreeMap<UeId, f64>,
    /// EWMA smoothing factor (standard PF window ≈ 100 subframes).
    alpha: f64,
    /// Round-robin pointer.
    rr_next: usize,
}

impl Scheduler {
    /// New scheduler of the given discipline.
    pub fn new(kind: SchedulerKind) -> Scheduler {
        Scheduler {
            kind,
            avg_rate: BTreeMap::new(),
            alpha: 0.01,
            rr_next: 0,
        }
    }

    /// Allocate the allowed subchannels of one downlink subframe among the
    /// demanding UEs. `allowed[s]` is the interference-management mask.
    ///
    /// UEs are never assigned more capacity than their backlog needs
    /// (trailing subchannels are released to other UEs — the §5.2
    /// "scheduler will later automatically assign these to its other
    /// clients" behaviour).
    pub fn allocate(&mut self, allowed: &[bool], demands: &[UeDemand]) -> Allocation {
        let n_sub = allowed.len();
        let mut assignment: Vec<Option<UeId>> = vec![None; n_sub];
        if demands.is_empty() {
            return Allocation { assignment };
        }
        for d in demands {
            assert_eq!(
                d.rate_per_subchannel.len(),
                n_sub,
                "UE {} rate vector length mismatch",
                d.ue
            );
        }
        // Remaining backlog per demand index as we hand out subchannels.
        let mut remaining: Vec<f64> = demands.iter().map(|d| d.backlog_bits as f64).collect();

        match self.kind {
            SchedulerKind::ProportionalFair => {
                for s in 0..n_sub {
                    if !allowed[s] {
                        continue;
                    }
                    let mut best: Option<(usize, f64)> = None;
                    for (i, d) in demands.iter().enumerate() {
                        if remaining[i] <= 0.0 {
                            continue;
                        }
                        let rate = d.rate_per_subchannel[s];
                        if rate <= 0.0 {
                            continue;
                        }
                        let avg = self.avg_rate.get(&d.ue).copied().unwrap_or(1.0).max(1.0);
                        let metric = rate / avg;
                        if best.is_none_or(|(_, m)| metric > m) {
                            best = Some((i, metric));
                        }
                    }
                    if let Some((i, _)) = best {
                        assignment[s] = Some(demands[i].ue);
                        remaining[i] -= demands[i].rate_per_subchannel[s];
                    }
                }
            }
            SchedulerKind::RoundRobin => {
                let n_ue = demands.len();
                let mut cursor = self.rr_next % n_ue;
                for s in 0..n_sub {
                    if !allowed[s] {
                        continue;
                    }
                    // Find the next UE (starting at cursor) with backlog
                    // and a usable subchannel.
                    for step in 0..n_ue {
                        let i = (cursor + step) % n_ue;
                        if remaining[i] > 0.0 && demands[i].rate_per_subchannel[s] > 0.0 {
                            assignment[s] = Some(demands[i].ue);
                            remaining[i] -= demands[i].rate_per_subchannel[s];
                            cursor = (i + 1) % n_ue;
                            break;
                        }
                    }
                }
                self.rr_next = cursor;
            }
        }
        Allocation { assignment }
    }

    /// Record bits actually delivered to `ue` this subframe (updates the
    /// PF average). Call once per subframe per UE, with 0 for unserved
    /// UEs so their average decays and their PF priority rises.
    pub fn record_served(&mut self, ue: UeId, bits: f64) {
        let avg = self.avg_rate.entry(ue).or_insert(1.0);
        *avg = (1.0 - self.alpha) * *avg + self.alpha * bits;
    }

    /// The PF average for a UE (test/diagnostic hook).
    pub fn average_rate(&self, ue: UeId) -> f64 {
        self.avg_rate.get(&ue).copied().unwrap_or(0.0)
    }

    /// Remove state for a detached UE.
    pub fn forget(&mut self, ue: UeId) {
        self.avg_rate.remove(&ue);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(ue: u32, backlog: u64, rates: Vec<f64>) -> UeDemand {
        UeDemand {
            ue: UeId::new(ue),
            backlog_bits: backlog,
            rate_per_subchannel: rates,
        }
    }

    #[test]
    fn respects_allowed_mask() {
        let mut s = Scheduler::new(SchedulerKind::ProportionalFair);
        let allowed = vec![true, false, true, false];
        let d = vec![demand(0, 1_000_000, vec![100.0; 4])];
        let a = s.allocate(&allowed, &d);
        assert_eq!(a.assignment[0], Some(UeId::new(0)));
        assert_eq!(a.assignment[1], None);
        assert_eq!(a.assignment[2], Some(UeId::new(0)));
        assert_eq!(a.assignment[3], None);
    }

    #[test]
    fn empty_demands_allocate_nothing() {
        let mut s = Scheduler::new(SchedulerKind::ProportionalFair);
        let a = s.allocate(&[true, true], &[]);
        assert_eq!(a.used_count(), 0);
    }

    #[test]
    fn backlog_limits_assignment() {
        // 150 bits of backlog at 100 bits/subchannel needs 2 subchannels,
        // not all 4 — the rest must go unused (or to other UEs).
        let mut s = Scheduler::new(SchedulerKind::ProportionalFair);
        let d = vec![demand(0, 150, vec![100.0; 4])];
        let a = s.allocate(&[true; 4], &d);
        assert_eq!(a.used_count(), 2);
    }

    #[test]
    fn released_capacity_goes_to_other_ue() {
        let mut s = Scheduler::new(SchedulerKind::ProportionalFair);
        let d = vec![
            demand(0, 150, vec![100.0; 4]),
            demand(1, 1_000_000, vec![100.0; 4]),
        ];
        let a = s.allocate(&[true; 4], &d);
        assert_eq!(a.used_count(), 4);
        assert_eq!(a.subchannels_of(UeId::new(1)).len(), 2);
    }

    #[test]
    fn pf_prefers_under_served_ue() {
        let mut s = Scheduler::new(SchedulerKind::ProportionalFair);
        // UE 0 has been served heavily, UE 1 starved.
        for _ in 0..200 {
            s.record_served(UeId::new(0), 10_000.0);
            s.record_served(UeId::new(1), 10.0);
        }
        let d = vec![
            demand(0, 1_000_000, vec![100.0; 2]),
            demand(1, 1_000_000, vec![100.0; 2]),
        ];
        let a = s.allocate(&[true, true], &d);
        assert_eq!(a.subchannels_of(UeId::new(1)).len(), 2, "{a:?}");
    }

    #[test]
    fn pf_exploits_frequency_selectivity() {
        // Equal averages; UE 0 peaks on sc0, UE 1 on sc1 → each gets its
        // best subchannel (the OFDMA advantage of §3.1).
        let mut s = Scheduler::new(SchedulerKind::ProportionalFair);
        s.record_served(UeId::new(0), 100.0);
        s.record_served(UeId::new(1), 100.0);
        let d = vec![
            demand(0, 10_000, vec![500.0, 50.0]),
            demand(1, 10_000, vec![50.0, 500.0]),
        ];
        let a = s.allocate(&[true, true], &d);
        assert_eq!(a.assignment[0], Some(UeId::new(0)));
        assert_eq!(a.assignment[1], Some(UeId::new(1)));
    }

    #[test]
    fn zero_rate_subchannel_never_assigned() {
        // A UE that cannot decode a subchannel (CQI 0) must not be put on
        // it, even if it is the only UE.
        let mut s = Scheduler::new(SchedulerKind::ProportionalFair);
        let d = vec![demand(0, 1_000_000, vec![0.0, 100.0])];
        let a = s.allocate(&[true, true], &d);
        assert_eq!(a.assignment[0], None);
        assert_eq!(a.assignment[1], Some(UeId::new(0)));
    }

    #[test]
    fn round_robin_rotates_between_subframes() {
        let mut s = Scheduler::new(SchedulerKind::RoundRobin);
        let d = vec![
            demand(0, 1_000_000, vec![100.0]),
            demand(1, 1_000_000, vec![100.0]),
        ];
        let first = s.allocate(&[true], &d).assignment[0];
        let second = s.allocate(&[true], &d).assignment[0];
        assert_ne!(first, second, "RR must alternate single subchannel");
    }

    #[test]
    fn round_robin_spreads_within_subframe() {
        let mut s = Scheduler::new(SchedulerKind::RoundRobin);
        let d = vec![
            demand(0, 1_000_000, vec![100.0; 4]),
            demand(1, 1_000_000, vec![100.0; 4]),
        ];
        let a = s.allocate(&[true; 4], &d);
        assert_eq!(a.subchannels_of(UeId::new(0)).len(), 2);
        assert_eq!(a.subchannels_of(UeId::new(1)).len(), 2);
    }

    #[test]
    fn record_served_moves_average() {
        let mut s = Scheduler::new(SchedulerKind::ProportionalFair);
        for _ in 0..1000 {
            s.record_served(UeId::new(0), 500.0);
        }
        assert!((s.average_rate(UeId::new(0)) - 500.0).abs() < 5.0);
        s.forget(UeId::new(0));
        assert_eq!(s.average_rate(UeId::new(0)), 0.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_demands() -> impl Strategy<Value = Vec<UeDemand>> {
            proptest::collection::vec(
                (0u64..2_000, proptest::collection::vec(0.0f64..1_000.0, 13)),
                1..6,
            )
            .prop_map(|raw| {
                raw.into_iter()
                    .enumerate()
                    .map(|(i, (backlog, rates))| UeDemand {
                        ue: UeId::new(i as u32),
                        backlog_bits: backlog,
                        rate_per_subchannel: rates,
                    })
                    .collect()
            })
        }

        proptest! {
            /// Nothing outside the mask, nothing to zero-rate subchannels,
            /// nothing to UEs with no backlog.
            #[test]
            fn allocation_is_always_legal(
                demands in arb_demands(),
                mask_bits in proptest::collection::vec(any::<bool>(), 13),
                rr in any::<bool>(),
            ) {
                let kind = if rr {
                    SchedulerKind::RoundRobin
                } else {
                    SchedulerKind::ProportionalFair
                };
                let mut s = Scheduler::new(kind);
                let alloc = s.allocate(&mask_bits, &demands);
                for (sc, assigned) in alloc.assignment.iter().enumerate() {
                    if let Some(ue) = assigned {
                        prop_assert!(mask_bits[sc], "assigned outside mask");
                        let d = demands.iter().find(|d| d.ue == *ue).expect("known UE");
                        prop_assert!(d.rate_per_subchannel[sc] > 0.0, "zero-rate subchannel");
                        prop_assert!(d.backlog_bits > 0, "no backlog");
                    }
                }
            }

            /// A single backlogged UE with uniform rates gets every allowed,
            /// usable subchannel it needs.
            #[test]
            fn lone_ue_saturates_mask(mask_bits in proptest::collection::vec(any::<bool>(), 13)) {
                let mut s = Scheduler::new(SchedulerKind::ProportionalFair);
                let d = vec![UeDemand {
                    ue: UeId::new(0),
                    backlog_bits: u64::MAX / 2,
                    rate_per_subchannel: vec![100.0; 13],
                }];
                let alloc = s.allocate(&mask_bits, &d);
                let allowed = mask_bits.iter().filter(|&&b| b).count();
                prop_assert_eq!(alloc.used_count(), allowed);
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_rate_vector_length_panics() {
        let mut s = Scheduler::new(SchedulerKind::ProportionalFair);
        let d = vec![demand(0, 100, vec![1.0; 3])];
        let _ = s.allocate(&[true; 4], &d);
    }
}
