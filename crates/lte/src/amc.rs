//! Adaptive modulation and coding: the 4-bit CQI table.
//!
//! The paper's coverage argument (§3.1, Table 1) hinges on LTE's ability
//! to run at code rates far below Wi-Fi's minimum of 1/2: the standard
//! CQI table starts at QPSK rate 78/1024 ≈ 0.076. This module carries the
//! full 3GPP TS 36.213 table 7.2.3-1, the SINR→CQI mapping, and a smooth
//! BLER model calibrated so each CQI hits roughly 10 % BLER at its switch
//! threshold (the standard link-adaptation target).

use cellfi_types::units::Db;

/// Modulation orders available to LTE (release 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Modulation {
    /// 2 bits/symbol.
    Qpsk,
    /// 4 bits/symbol.
    Qam16,
    /// 6 bits/symbol.
    Qam64,
}

impl Modulation {
    /// Raw bits per modulation symbol.
    pub fn bits_per_symbol(self) -> f64 {
        match self {
            Modulation::Qpsk => 2.0,
            Modulation::Qam16 => 4.0,
            Modulation::Qam64 => 6.0,
        }
    }
}

/// A 4-bit channel quality indicator, 1..=15 (0 = out of range).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cqi(pub u8);

impl Cqi {
    /// Out-of-range indicator: the UE cannot decode even CQI 1.
    pub const OUT_OF_RANGE: Cqi = Cqi(0);

    /// Highest CQI.
    pub const MAX: Cqi = Cqi(15);

    /// True when the channel supports some transmission.
    pub fn usable(self) -> bool {
        self.0 >= 1
    }
}

/// One row of the CQI table.
#[derive(Debug, Clone, Copy)]
pub struct CqiEntry {
    /// CQI index, 1..=15.
    pub cqi: Cqi,
    /// Modulation for this CQI.
    pub modulation: Modulation,
    /// Code rate × 1024 (as specified in TS 36.213).
    pub code_rate_x1024: u32,
    /// Spectral efficiency in information bits per resource element.
    pub efficiency: f64,
    /// SINR at which this CQI reaches the 10 % BLER target.
    pub sinr_threshold: Db,
}

/// TS 36.213 table 7.2.3-1 with standard link-level SINR thresholds
/// (≈ 2 dB spacing from −6.7 dB to +21 dB, the usual ns-3/vendor
/// calibration).
const TABLE: [CqiEntry; 15] = [
    entry(1, Modulation::Qpsk, 78, 0.1523, -6.7),
    entry(2, Modulation::Qpsk, 120, 0.2344, -4.7),
    entry(3, Modulation::Qpsk, 193, 0.3770, -2.3),
    entry(4, Modulation::Qpsk, 308, 0.6016, 0.2),
    entry(5, Modulation::Qpsk, 449, 0.8770, 2.4),
    entry(6, Modulation::Qpsk, 602, 1.1758, 4.3),
    entry(7, Modulation::Qam16, 378, 1.4766, 5.9),
    entry(8, Modulation::Qam16, 490, 1.9141, 8.1),
    entry(9, Modulation::Qam16, 616, 2.4063, 10.3),
    entry(10, Modulation::Qam64, 466, 2.7305, 11.7),
    entry(11, Modulation::Qam64, 567, 3.3223, 14.1),
    entry(12, Modulation::Qam64, 666, 3.9023, 16.3),
    entry(13, Modulation::Qam64, 772, 4.5234, 18.7),
    entry(14, Modulation::Qam64, 873, 5.1152, 21.0),
    entry(15, Modulation::Qam64, 948, 5.5547, 22.7),
];

const fn entry(
    cqi: u8,
    modulation: Modulation,
    code_rate_x1024: u32,
    efficiency: f64,
    sinr_threshold_db: f64,
) -> CqiEntry {
    CqiEntry {
        cqi: Cqi(cqi),
        modulation,
        code_rate_x1024,
        efficiency,
        sinr_threshold: Db(sinr_threshold_db),
    }
}

/// The CQI/AMC table with SINR mapping and BLER model.
///
/// ```
/// use cellfi_lte::amc::{Cqi, CqiTable};
/// use cellfi_types::units::Db;
/// let t = CqiTable;
/// // A −5 dB cell-edge link still decodes — below anything Wi-Fi offers.
/// let cqi = t.cqi_for_sinr(Db(-5.0));
/// assert!(cqi.usable());
/// assert!(t.code_rate(cqi) < 0.5);
/// // A strong link runs 64QAM near rate-1.
/// assert_eq!(t.cqi_for_sinr(Db(25.0)), Cqi(15));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct CqiTable;

impl CqiTable {
    /// All 15 entries, CQI 1 first.
    pub fn entries(&self) -> &'static [CqiEntry; 15] {
        &TABLE
    }

    /// Entry for a CQI index. Panics on CQI 0 (out of range has no MCS).
    pub fn entry(&self, cqi: Cqi) -> &'static CqiEntry {
        assert!(cqi.usable(), "CQI 0 has no MCS");
        &TABLE[(cqi.0 - 1) as usize]
    }

    /// The highest CQI whose threshold is at or below `sinr` — what an
    /// ideal UE reports. CQI 0 when below even CQI 1's threshold.
    pub fn cqi_for_sinr(&self, sinr: Db) -> Cqi {
        let mut best = Cqi::OUT_OF_RANGE;
        for e in TABLE.iter() {
            if sinr.value() >= e.sinr_threshold.value() {
                best = e.cqi;
            } else {
                break;
            }
        }
        best
    }

    /// Code rate (0..1) for a CQI.
    pub fn code_rate(&self, cqi: Cqi) -> f64 {
        f64::from(self.entry(cqi).code_rate_x1024) / 1024.0
    }

    /// Spectral efficiency (information bits per RE) for a CQI.
    pub fn efficiency(&self, cqi: Cqi) -> f64 {
        self.entry(cqi).efficiency
    }

    /// Block error rate for transmitting at `cqi`'s MCS over a channel of
    /// quality `sinr`. Sigmoid in dB around the CQI threshold:
    /// 10 % at the threshold, →0 well above, →1 well below.
    pub fn bler(&self, cqi: Cqi, sinr: Db) -> f64 {
        let thr = self.entry(cqi).sinr_threshold;
        // Slope ~0.6 dB per decade of BLER change: a typical turbo-code
        // waterfall width of ~1.5 dB between 90 % and 10 % BLER.
        let x = (sinr.value() - thr.value()) / 0.65;
        let base = 1.0 / (1.0 + (x + 2.197).exp()); // ln(9) ≈ 2.197 centres 10 % at thr
        base.clamp(0.0, 1.0)
    }

    /// Goodput in information bits per resource element when transmitting
    /// at `cqi` over `sinr`: efficiency × (1 − BLER). The paper's Fig 7
    /// metric ("bit/symbol = coding rate × (1 − BLER)") up to the
    /// modulation factor.
    pub fn goodput_per_re(&self, cqi: Cqi, sinr: Db) -> f64 {
        self.efficiency(cqi) * (1.0 - self.bler(cqi, sinr))
    }
}

/// The CQI table's SINR grid, inverted into the linear domain.
///
/// `cqi_for_linear(r)` returns exactly `CqiTable::cqi_for_sinr(Db(10·log10 r))`
/// for every positive ratio `r`, without the `log10`: each dB threshold is
/// mapped to the smallest positive f64 whose dB value reaches it (found by
/// bisection over the monotone bit patterns of positive floats), so the
/// comparison moves to the linear domain with zero transcendental math and
/// zero behaviour change.
#[derive(Debug, Clone)]
pub struct LinearCqiMap {
    /// `bounds[i]` is the smallest linear ratio reporting CQI `i+1`.
    bounds: [f64; 15],
}

impl LinearCqiMap {
    /// Invert `table`'s SINR thresholds into linear-ratio boundaries.
    pub fn new(table: &CqiTable) -> LinearCqiMap {
        let mut bounds = [0.0; 15];
        for (b, e) in bounds.iter_mut().zip(table.entries().iter()) {
            *b = smallest_linear_at_or_above(e.sinr_threshold);
        }
        LinearCqiMap { bounds }
    }

    /// The CQI an ideal UE reports for a linear SINR ratio; equivalent to
    /// `cqi_for_sinr` on `10·log10(ratio)`.
    #[inline]
    pub fn cqi_for_linear(&self, ratio: f64) -> Cqi {
        let mut best = Cqi::OUT_OF_RANGE;
        for (i, &b) in self.bounds.iter().enumerate() {
            if ratio >= b {
                best = Cqi(i as u8 + 1);
            } else {
                break;
            }
        }
        best
    }
}

impl Default for LinearCqiMap {
    fn default() -> LinearCqiMap {
        LinearCqiMap::new(&CqiTable)
    }
}

/// Smallest positive f64 `x` with `10·log10(x) >= thr`. Positive f64 bit
/// patterns order identically to their values and `log10` is monotone, so
/// binary search over the bit space finds the exact boundary.
fn smallest_linear_at_or_above(thr: Db) -> f64 {
    let at_or_above = |bits: u64| {
        let x = f64::from_bits(bits);
        10.0 * x.log10() >= thr.value()
    };
    let mut lo = 1u64; // smallest positive subnormal: far below any threshold
    let mut hi = f64::to_bits(1e30); // far above the 22.7 dB top threshold
    debug_assert!(!at_or_above(lo) && at_or_above(hi));
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if at_or_above(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    f64::from_bits(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: CqiTable = CqiTable;

    #[test]
    fn table_has_fifteen_monotone_entries() {
        let e = T.entries();
        assert_eq!(e.len(), 15);
        for w in e.windows(2) {
            assert!(w[1].efficiency > w[0].efficiency, "efficiency not monotone");
            assert!(
                w[1].sinr_threshold.value() > w[0].sinr_threshold.value(),
                "thresholds not monotone"
            );
        }
    }

    #[test]
    fn lowest_code_rate_far_below_wifi_minimum() {
        // Table 1: LTE coding rate ≥ 0.1 vs 802.11af ≥ 0.5.
        assert!(T.code_rate(Cqi(1)) < 0.1);
        assert!((T.code_rate(Cqi(1)) - 78.0 / 1024.0).abs() < 1e-12);
    }

    #[test]
    fn median_coverage_code_rate_near_half() {
        // Fig 1(b): the median code rate in the drive test was 1/2. CQI 7
        // (16QAM 378/1024 ≈ 0.37) and CQI 5/6 (QPSK 0.44/0.59) bracket it.
        assert!((T.code_rate(Cqi(6)) - 0.588).abs() < 0.01);
        assert!((T.code_rate(Cqi(5)) - 0.438).abs() < 0.01);
    }

    #[test]
    fn cqi_for_sinr_brackets() {
        assert_eq!(T.cqi_for_sinr(Db(-10.0)), Cqi::OUT_OF_RANGE);
        assert_eq!(T.cqi_for_sinr(Db(-6.7)), Cqi(1));
        assert_eq!(T.cqi_for_sinr(Db(0.0)), Cqi(3));
        assert_eq!(T.cqi_for_sinr(Db(30.0)), Cqi(15));
    }

    #[test]
    fn cqi_for_sinr_is_monotone() {
        let mut last = Cqi(0);
        for i in -15..30 {
            let c = T.cqi_for_sinr(Db(f64::from(i)));
            assert!(c >= last);
            last = c;
        }
    }

    #[test]
    fn selected_cqi_meets_bler_target_at_threshold() {
        for e in T.entries() {
            let b = T.bler(e.cqi, e.sinr_threshold);
            assert!((b - 0.1).abs() < 0.01, "CQI {} BLER {b}", e.cqi.0);
        }
    }

    #[test]
    fn bler_waterfall_shape() {
        let cqi = Cqi(7);
        let thr = T.entry(cqi).sinr_threshold;
        assert!(T.bler(cqi, thr + Db(5.0)) < 0.001);
        assert!(T.bler(cqi, thr - Db(5.0)) > 0.95);
        // Monotone decreasing in SINR.
        let mut last = 1.0;
        for i in 0..40 {
            let b = T.bler(cqi, thr + Db(f64::from(i) * 0.5 - 10.0));
            assert!(b <= last + 1e-12);
            last = b;
        }
    }

    #[test]
    fn goodput_peaks_at_matched_cqi() {
        // At a given SINR, the ideal CQI choice should (near-)maximize
        // goodput among all CQIs — the link adaptation rationale.
        for sinr_db in [-4.0, 0.0, 6.0, 12.0, 20.0] {
            let sinr = Db(sinr_db);
            let chosen = T.cqi_for_sinr(sinr);
            if !chosen.usable() {
                continue;
            }
            let chosen_gp = T.goodput_per_re(chosen, sinr);
            for e in T.entries() {
                let gp = T.goodput_per_re(e.cqi, sinr);
                assert!(
                    gp <= chosen_gp * 1.5 + 1e-9,
                    "at {sinr_db} dB, CQI {} gp {gp} >> chosen {} gp {chosen_gp}",
                    e.cqi.0,
                    chosen.0
                );
            }
        }
    }

    #[test]
    fn efficiency_matches_modulation_times_rate() {
        for e in T.entries() {
            let expect = e.modulation.bits_per_symbol() * f64::from(e.code_rate_x1024) / 1024.0;
            assert!(
                (e.efficiency - expect).abs() < 0.01,
                "CQI {}: {} vs {}",
                e.cqi.0,
                e.efficiency,
                expect
            );
        }
    }

    #[test]
    #[should_panic(expected = "CQI 0 has no MCS")]
    fn entry_for_cqi0_panics() {
        let _ = T.entry(Cqi::OUT_OF_RANGE);
    }

    #[test]
    fn linear_map_matches_db_table_on_dense_sweep() {
        let m = LinearCqiMap::default();
        // Dense dB sweep from well below CQI 1 to well above CQI 15.
        for i in -3000..=3000 {
            let db = f64::from(i) / 100.0;
            let ratio = Db(db).to_linear();
            assert_eq!(
                m.cqi_for_linear(ratio),
                T.cqi_for_sinr(Db(10.0 * ratio.log10())),
                "divergence near {db} dB"
            );
        }
    }

    #[test]
    fn linear_map_matches_db_table_at_boundary_neighbours() {
        // The exactness claim is strongest at the bisected boundaries:
        // walk a few ulps either side of every threshold.
        let m = LinearCqiMap::default();
        for e in T.entries() {
            let b = m.bounds[(e.cqi.0 - 1) as usize];
            for bits in (b.to_bits() - 4)..=(b.to_bits() + 4) {
                let r = f64::from_bits(bits);
                assert_eq!(
                    m.cqi_for_linear(r),
                    T.cqi_for_sinr(Db(10.0 * r.log10())),
                    "divergence {} ulps from CQI {} boundary",
                    bits as i64 - b.to_bits() as i64,
                    e.cqi.0
                );
            }
        }
    }

    #[test]
    fn linear_map_boundary_is_tight() {
        // bounds[i] reaches the threshold; one ulp below does not.
        let m = LinearCqiMap::default();
        for e in T.entries() {
            let b = m.bounds[(e.cqi.0 - 1) as usize];
            let thr = e.sinr_threshold.value();
            assert!(10.0 * b.log10() >= thr);
            let below = f64::from_bits(b.to_bits() - 1);
            assert!(10.0 * below.log10() < thr);
        }
    }
}
