//! The CellFi access point's LTE cell: state, queues and scheduling.
//!
//! A [`Cell`] is the "LTE small cell SW" block of Fig 3 — everything the
//! stock stack provides: carrier configuration (from channel selection),
//! SIB broadcast, UE attachment, downlink queues and the standard
//! scheduler. The two CellFi additions (channel selection, interference
//! management) live in `cellfi-spectrum` and `cellfi-core` and drive this
//! struct only through its public, "standard" interfaces:
//! [`Cell::set_carrier`] / [`Cell::radio_off`] and
//! [`Cell::set_allowed_mask`].

use crate::earfcn::Earfcn;
use crate::grid::{ChannelBandwidth, ResourceGrid};
use crate::scheduler::{Allocation, Scheduler, SchedulerKind, UeDemand};
use crate::sib::SystemInformation;
use crate::tdd::TddConfig;
use cellfi_types::time::Instant;
use cellfi_types::units::Dbm;
use cellfi_types::{ApId, UeId};
use std::collections::BTreeMap;

/// Static configuration of one cell.
#[derive(Debug, Clone)]
pub struct CellConfig {
    /// Identity.
    pub id: ApId,
    /// Downlink transmit power (conducted). The paper's small cell:
    /// 23–29 dBm depending on experiment.
    pub tx_power: Dbm,
    /// LTE channel bandwidth.
    pub bandwidth: ChannelBandwidth,
    /// TDD uplink/downlink configuration.
    pub tdd: TddConfig,
    /// Scheduler discipline.
    pub scheduler: SchedulerKind,
    /// PRACH Zadoff–Chu root planned for this cell.
    pub prach_root: u32,
}

impl CellConfig {
    /// The paper's large-scale-evaluation cell: 30 dBm, 5 MHz, TDD
    /// config 4, proportional fair.
    pub fn paper_default(id: ApId) -> CellConfig {
        CellConfig {
            id,
            tx_power: Dbm(30.0),
            bandwidth: ChannelBandwidth::Mhz5,
            tdd: TddConfig::paper_default(),
            scheduler: SchedulerKind::ProportionalFair,
            prach_root: 129 + id.0 % 100,
        }
    }
}

/// Runtime state of one cell.
#[derive(Debug, Clone)]
pub struct Cell {
    config: CellConfig,
    grid: ResourceGrid,
    scheduler: Scheduler,
    sib: Option<SystemInformation>,
    attached: Vec<UeId>,
    /// Downlink queue per UE, bits. BTreeMap for deterministic iteration.
    queues: BTreeMap<UeId, u64>,
    /// Interference-management mask: which subchannels may be scheduled.
    allowed: Vec<bool>,
}

impl Cell {
    /// A cell with its radio off (no carrier configured).
    pub fn new(config: CellConfig) -> Cell {
        let grid = ResourceGrid::new(config.bandwidth);
        let n = grid.num_subchannels() as usize;
        Cell {
            scheduler: Scheduler::new(config.scheduler),
            grid,
            config,
            sib: None,
            attached: Vec::new(),
            queues: BTreeMap::new(),
            allowed: vec![true; n],
        }
    }

    /// Configuration.
    pub fn config(&self) -> &CellConfig {
        &self.config
    }

    /// Resource grid.
    pub fn grid(&self) -> &ResourceGrid {
        &self.grid
    }

    /// Current SIB, if the radio is on.
    pub fn sib(&self) -> Option<&SystemInformation> {
        self.sib.as_ref()
    }

    /// Whether the radio is transmitting (carrier configured). Even an
    /// idle cell with the radio on emits CRS/SIB — the Fig 7 signalling
    /// interference.
    pub fn radio_on(&self) -> bool {
        self.sib.is_some()
    }

    /// Configure the carrier after channel selection and start radiating.
    pub fn set_carrier(&mut self, carrier: Earfcn, max_ue_power: Dbm, now: Instant) {
        self.sib = Some(SystemInformation::tdd(now, carrier, max_ue_power));
    }

    /// Stop radiating (channel vacated). All UEs lose their grants — "once
    /// an access point looses a spectrum lease and stops transmitting, all
    /// of its clients will stop transmitting instantly" (§4.2).
    pub fn radio_off(&mut self) {
        self.sib = None;
        for ue in self.attached.drain(..) {
            self.scheduler.forget(ue);
        }
        self.queues.clear();
    }

    /// Attach a UE (after its RACH completes). No-op if already attached.
    pub fn attach(&mut self, ue: UeId) {
        assert!(self.radio_on(), "cannot attach to a cell with radio off");
        if !self.attached.contains(&ue) {
            self.attached.push(ue);
            self.queues.entry(ue).or_insert(0);
        }
    }

    /// Detach a UE.
    pub fn detach(&mut self, ue: UeId) {
        self.attached.retain(|&u| u != ue);
        self.queues.remove(&ue);
        self.scheduler.forget(ue);
    }

    /// Attached UEs in attach order.
    pub fn attached_ues(&self) -> &[UeId] {
        &self.attached
    }

    /// Number of *active* clients: attached UEs with queued traffic. This
    /// is the `N_i` of the share calculation (§5.2).
    pub fn active_clients(&self) -> usize {
        self.attached
            .iter()
            .filter(|u| self.queues.get(u).copied().unwrap_or(0) > 0)
            .count()
    }

    /// Enqueue downlink data for a UE (bits).
    pub fn enqueue(&mut self, ue: UeId, bits: u64) {
        assert!(self.attached.contains(&ue), "enqueue for unattached {ue}");
        *self.queues.get_mut(&ue).expect("attached UEs have queues") += bits;
    }

    /// Bits queued for a UE.
    pub fn queued_bits(&self, ue: UeId) -> u64 {
        self.queues.get(&ue).copied().unwrap_or(0)
    }

    /// Total queued bits. Saturating: experiment harnesses backlog every
    /// UE with a `u64::MAX / 4` sentinel, so a cell with five or more
    /// backlogged clients sums past `u64::MAX`; callers only compare the
    /// total against zero, and a saturated total cannot reach zero.
    pub fn total_queued_bits(&self) -> u64 {
        self.queues.values().fold(0u64, |a, &b| a.saturating_add(b))
    }

    /// Install the interference-management subchannel mask.
    pub fn set_allowed_mask(&mut self, mask: Vec<bool>) {
        assert_eq!(
            mask.len(),
            self.grid.num_subchannels() as usize,
            "mask length must equal subchannel count"
        );
        self.allowed = mask;
    }

    /// The current mask.
    pub fn allowed_mask(&self) -> &[bool] {
        &self.allowed
    }

    /// Run the scheduler for one downlink subframe. `rates[i][s]` is the
    /// achievable bits for attached UE `i` (attach order) on subchannel
    /// `s` this subframe, as derived from its latest CQI report by the
    /// caller (the system engine owns SINR computation).
    pub fn schedule_downlink(&mut self, rates: &[Vec<f64>]) -> Allocation {
        assert_eq!(rates.len(), self.attached.len(), "one rate row per UE");
        let demands: Vec<UeDemand> = self
            .attached
            .iter()
            .zip(rates)
            .map(|(&ue, r)| UeDemand {
                ue,
                backlog_bits: self.queued_bits(ue),
                rate_per_subchannel: r.clone(),
            })
            .collect();
        self.scheduler.allocate(&self.allowed, &demands)
    }

    /// Record delivery of `bits` to `ue` (dequeues and feeds the PF
    /// average). Returns the bits actually drained (≤ queue depth).
    pub fn deliver(&mut self, ue: UeId, bits: u64) -> u64 {
        let q = self
            .queues
            .get_mut(&ue)
            .expect("delivery only targets attached UEs");
        let drained = bits.min(*q);
        *q -= drained;
        self.scheduler.record_served(ue, drained as f64);
        drained
    }

    /// Feed a zero-service observation for UEs not served this subframe
    /// (keeps the PF average honest).
    pub fn record_unserved(&mut self, ue: UeId) {
        self.scheduler.record_served(ue, 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::earfcn::{Band, Earfcn};

    fn carrier() -> Earfcn {
        Earfcn::new(Band::Tvws, 100_500)
    }

    fn on_cell() -> Cell {
        let mut c = Cell::new(CellConfig::paper_default(ApId::new(0)));
        c.set_carrier(carrier(), Dbm(20.0), Instant::ZERO);
        c
    }

    #[test]
    fn new_cell_radio_off() {
        let c = Cell::new(CellConfig::paper_default(ApId::new(0)));
        assert!(!c.radio_on());
        assert!(c.sib().is_none());
    }

    #[test]
    fn set_carrier_broadcasts_sib() {
        let c = on_cell();
        assert!(c.radio_on());
        let sib = c.sib().unwrap();
        assert_eq!(sib.downlink, carrier());
        assert_eq!(sib.max_ue_power, Dbm(20.0));
    }

    #[test]
    fn radio_off_detaches_everyone() {
        let mut c = on_cell();
        c.attach(UeId::new(1));
        c.attach(UeId::new(2));
        c.enqueue(UeId::new(1), 999);
        c.radio_off();
        assert!(!c.radio_on());
        assert!(c.attached_ues().is_empty());
        assert_eq!(c.total_queued_bits(), 0);
    }

    #[test]
    #[should_panic(expected = "radio off")]
    fn attach_requires_radio() {
        let mut c = Cell::new(CellConfig::paper_default(ApId::new(0)));
        c.attach(UeId::new(1));
    }

    #[test]
    fn attach_is_idempotent() {
        let mut c = on_cell();
        c.attach(UeId::new(1));
        c.attach(UeId::new(1));
        assert_eq!(c.attached_ues().len(), 1);
    }

    #[test]
    fn active_clients_counts_only_backlogged() {
        let mut c = on_cell();
        c.attach(UeId::new(1));
        c.attach(UeId::new(2));
        c.enqueue(UeId::new(1), 100);
        assert_eq!(c.active_clients(), 1);
        c.enqueue(UeId::new(2), 1);
        assert_eq!(c.active_clients(), 2);
    }

    #[test]
    fn deliver_drains_queue_and_caps_at_depth() {
        let mut c = on_cell();
        c.attach(UeId::new(1));
        c.enqueue(UeId::new(1), 100);
        assert_eq!(c.deliver(UeId::new(1), 60), 60);
        assert_eq!(c.queued_bits(UeId::new(1)), 40);
        assert_eq!(c.deliver(UeId::new(1), 60), 40);
        assert_eq!(c.queued_bits(UeId::new(1)), 0);
    }

    #[test]
    fn schedule_respects_mask() {
        let mut c = on_cell();
        c.attach(UeId::new(1));
        c.enqueue(UeId::new(1), 1_000_000);
        let n = c.grid().num_subchannels() as usize;
        let mut mask = vec![false; n];
        mask[3] = true;
        mask[7] = true;
        c.set_allowed_mask(mask);
        let rates = vec![vec![100.0; n]];
        let alloc = c.schedule_downlink(&rates);
        assert_eq!(alloc.used_count(), 2);
        assert!(alloc.assignment[3].is_some() && alloc.assignment[7].is_some());
    }

    #[test]
    fn default_mask_allows_everything() {
        let c = on_cell();
        assert!(c.allowed_mask().iter().all(|&b| b));
        assert_eq!(c.allowed_mask().len(), 13);
    }

    #[test]
    #[should_panic(expected = "mask length")]
    fn wrong_mask_length_panics() {
        let mut c = on_cell();
        c.set_allowed_mask(vec![true; 5]);
    }

    #[test]
    fn detach_forgets_queue() {
        let mut c = on_cell();
        c.attach(UeId::new(1));
        c.enqueue(UeId::new(1), 77);
        c.detach(UeId::new(1));
        assert_eq!(c.queued_bits(UeId::new(1)), 0);
        assert!(c.attached_ues().is_empty());
    }
}
