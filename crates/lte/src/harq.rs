//! Hybrid ARQ with chase combining.
//!
//! HARQ is the second pillar of LTE's long-range advantage (Table 1,
//! §3.1): a transport block that fails to decode is retransmitted and the
//! receiver combines the soft bits, gaining ~3 dB of effective SINR per
//! retransmission. In the paper's drive test, "25 % of packets sent from
//! distances larger than 500 m use hybrid ARQ".
//!
//! We model release-8 downlink HARQ: 8 parallel stop-and-wait processes
//! per UE, chase combining (the retransmission is an identical copy, so
//! effective SINR is the *linear sum* over attempts), and a cap of 4
//! transmissions after which the block is dropped to RLC.

use crate::amc::{Cqi, CqiTable};
use cellfi_types::units::Db;
use rand::Rng;

/// Number of parallel HARQ processes per UE (release 8 FDD/TDD downlink).
pub const NUM_PROCESSES: usize = 8;

/// Maximum transmissions of one transport block (1 initial + 3 re-tx).
pub const MAX_TRANSMISSIONS: u8 = 4;

/// Outcome of one HARQ transmission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HarqOutcome {
    /// Block decoded; process freed.
    Ack {
        /// How many transmissions the block took in total.
        attempts: u8,
    },
    /// Block failed but will be retransmitted.
    Nack,
    /// Block failed on the final permitted attempt and was dropped.
    Dropped,
}

/// One stop-and-wait HARQ process.
#[derive(Debug, Clone, Copy, Default)]
struct Process {
    /// Number of transmissions already made for the in-flight block.
    attempts: u8,
    /// Linear-domain accumulated SINR from previous attempts.
    accumulated_linear_sinr: f64,
}

/// The HARQ entity of one UE: a bank of processes plus counters.
#[derive(Debug, Clone)]
pub struct HarqEntity {
    processes: [Process; NUM_PROCESSES],
    table: CqiTable,
    /// Total blocks ACKed on the first attempt.
    pub first_tx_acks: u64,
    /// Total blocks ACKed after at least one retransmission — the
    /// numerator of the paper's "25 % used HARQ" statistic.
    pub retx_acks: u64,
    /// Total blocks dropped after `MAX_TRANSMISSIONS`.
    pub drops: u64,
}

impl Default for HarqEntity {
    fn default() -> Self {
        HarqEntity::new()
    }
}

impl HarqEntity {
    /// Fresh entity with all processes idle.
    pub fn new() -> HarqEntity {
        HarqEntity {
            processes: [Process::default(); NUM_PROCESSES],
            table: CqiTable,
            first_tx_acks: 0,
            retx_acks: 0,
            drops: 0,
        }
    }

    /// True when the process has a block awaiting retransmission.
    pub fn is_pending(&self, process: usize) -> bool {
        self.processes[process].attempts > 0
    }

    /// Any idle process id, or `None` when all 8 are busy (the entity is
    /// then HARQ-stalled, which throttles new transmissions exactly as a
    /// real stack would).
    pub fn idle_process(&self) -> Option<usize> {
        self.processes.iter().position(|p| p.attempts == 0)
    }

    /// Effective SINR a retransmission on `process` would see given the
    /// instantaneous channel `sinr`, after chase combining with prior
    /// attempts.
    pub fn combined_sinr(&self, process: usize, sinr: Db) -> Db {
        let p = &self.processes[process];
        let total = p.accumulated_linear_sinr + sinr.to_linear();
        Db(10.0 * total.log10())
    }

    /// Transmit (or retransmit) a block on `process` at MCS `cqi` over a
    /// channel of instantaneous quality `sinr`. Decoding success is drawn
    /// from the AMC BLER model at the chase-combined SINR.
    pub fn transmit<R: Rng>(
        &mut self,
        process: usize,
        cqi: Cqi,
        sinr: Db,
        rng: &mut R,
    ) -> HarqOutcome {
        assert!(process < NUM_PROCESSES, "bad HARQ process {process}");
        let eff = self.combined_sinr(process, sinr);
        let p = &mut self.processes[process];
        p.attempts += 1;
        let bler = self.table.bler(cqi, eff);
        if rng.gen::<f64>() >= bler {
            let attempts = p.attempts;
            if attempts == 1 {
                self.first_tx_acks += 1;
            } else {
                self.retx_acks += 1;
            }
            *p = Process::default();
            HarqOutcome::Ack { attempts }
        } else if p.attempts >= MAX_TRANSMISSIONS {
            self.drops += 1;
            *p = Process::default();
            HarqOutcome::Dropped
        } else {
            p.accumulated_linear_sinr += sinr.to_linear();
            HarqOutcome::Nack
        }
    }

    /// Fraction of delivered blocks that needed at least one
    /// retransmission (the Fig 1 "used hybrid ARQ" statistic).
    pub fn harq_usage(&self) -> f64 {
        let delivered = self.first_tx_acks + self.retx_acks;
        if delivered == 0 {
            0.0
        } else {
            self.retx_acks as f64 / delivered as f64
        }
    }

    /// Residual loss rate after HARQ (drops / all finished blocks).
    pub fn residual_loss(&self) -> f64 {
        let total = self.first_tx_acks + self.retx_acks + self.drops;
        if total == 0 {
            0.0
        } else {
            self.drops as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn high_sinr_acks_first_time() {
        let mut h = HarqEntity::new();
        let mut r = rng();
        for _ in 0..200 {
            let out = h.transmit(0, Cqi(7), Db(20.0), &mut r);
            assert_eq!(out, HarqOutcome::Ack { attempts: 1 });
        }
        assert_eq!(h.retx_acks, 0);
        assert_eq!(h.harq_usage(), 0.0);
    }

    #[test]
    fn chase_combining_gains_three_db_per_copy() {
        let mut h = HarqEntity::new();
        let mut r = rng();
        // Force one failed attempt by transmitting way above the channel.
        let out = h.transmit(0, Cqi(15), Db(-20.0), &mut r);
        assert_eq!(out, HarqOutcome::Nack);
        let eff = h.combined_sinr(0, Db(-20.0));
        assert!((eff.value() - (-16.99)).abs() < 0.02, "combined {eff}");
    }

    #[test]
    fn marginal_channel_uses_retransmissions() {
        // 2 dB below the CQI threshold: first attempt usually fails, the
        // ~3 dB combining gain then rescues most blocks — exactly the
        // paper's long-link behaviour.
        let mut h = HarqEntity::new();
        let mut r = rng();
        let thr = CqiTable.entry(Cqi(5)).sinr_threshold;
        for _ in 0..2000 {
            let _ = h.transmit(0, Cqi(5), thr - Db(2.0), &mut r);
        }
        assert!(h.harq_usage() > 0.3, "usage {}", h.harq_usage());
        assert!(h.residual_loss() < 0.15, "loss {}", h.residual_loss());
    }

    #[test]
    fn drop_after_max_transmissions() {
        let mut h = HarqEntity::new();
        let mut r = rng();
        // Hopeless channel: every block must be dropped on attempt 4.
        let mut outcomes = Vec::new();
        for _ in 0..MAX_TRANSMISSIONS {
            outcomes.push(h.transmit(0, Cqi(15), Db(-40.0), &mut r));
        }
        assert_eq!(outcomes[0], HarqOutcome::Nack);
        assert_eq!(outcomes[1], HarqOutcome::Nack);
        assert_eq!(outcomes[2], HarqOutcome::Nack);
        assert_eq!(outcomes[3], HarqOutcome::Dropped);
        assert_eq!(h.drops, 1);
        // Process is freed after the drop.
        assert!(!h.is_pending(0));
    }

    #[test]
    fn idle_process_bookkeeping() {
        let mut h = HarqEntity::new();
        let mut r = rng();
        assert_eq!(h.idle_process(), Some(0));
        // Occupy process 0 with a pending block.
        let _ = h.transmit(0, Cqi(15), Db(-40.0), &mut r);
        assert!(h.is_pending(0));
        assert_eq!(h.idle_process(), Some(1));
    }

    #[test]
    fn entity_stalls_when_all_processes_pending() {
        let mut h = HarqEntity::new();
        let mut r = rng();
        for p in 0..NUM_PROCESSES {
            let _ = h.transmit(p, Cqi(15), Db(-40.0), &mut r);
        }
        assert_eq!(h.idle_process(), None);
    }

    #[test]
    fn ack_after_retx_counts_attempts() {
        let mut h = HarqEntity::new();
        let mut r = rng();
        // Fail once at −40 dB, then hand the process a perfect channel.
        let _ = h.transmit(3, Cqi(1), Db(-40.0), &mut r);
        let out = h.transmit(3, Cqi(1), Db(30.0), &mut r);
        assert_eq!(out, HarqOutcome::Ack { attempts: 2 });
        assert_eq!(h.retx_acks, 1);
        assert!(h.harq_usage() > 0.99);
    }

    #[test]
    #[should_panic(expected = "bad HARQ process")]
    fn out_of_range_process_panics() {
        let mut h = HarqEntity::new();
        let mut r = rng();
        let _ = h.transmit(NUM_PROCESSES, Cqi(1), Db(0.0), &mut r);
    }
}
