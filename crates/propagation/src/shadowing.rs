//! Log-normal shadowing.
//!
//! Shadowing is the slow, terrain-induced deviation from mean path loss.
//! Two properties matter for the reproduction:
//!
//! 1. **Determinism per link** — when the same topology is simulated under
//!    CellFi, plain LTE and Wi-Fi, each link must see the *same* shadowing
//!    so the comparison isolates the MAC. We therefore derive the value
//!    from a seed and the (tx, rx) node pair rather than drawing it during
//!    the run.
//! 2. **Symmetry** — shadowing is a property of the environment between
//!    two points, so `shadow(a, b) == shadow(b, a)` (TDD channel
//!    reciprocity).
//!
//! The marginal distribution is `N(0, σ²)` in dB; σ defaults to 6 dB,
//! typical for outdoor UHF macro measurements.

use cellfi_types::rng::SeedSeq;
use cellfi_types::units::Db;
use rand::Rng;
use rand::SeedableRng;

/// Deterministic per-link log-normal shadowing field.
#[derive(Debug, Clone, Copy)]
pub struct Shadowing {
    seeds: SeedSeq,
    sigma_db: f64,
}

impl Shadowing {
    /// Shadowing field with standard deviation `sigma_db`, derived from the
    /// given seed sequence.
    pub fn new(seeds: SeedSeq, sigma_db: f64) -> Shadowing {
        assert!(sigma_db >= 0.0, "sigma must be non-negative");
        Shadowing { seeds, sigma_db }
    }

    /// A field that adds no shadowing. Useful in unit tests that need
    /// exact link budgets.
    pub fn disabled(seeds: SeedSeq) -> Shadowing {
        Shadowing::new(seeds, 0.0)
    }

    /// Standard deviation in dB.
    pub fn sigma_db(&self) -> f64 {
        self.sigma_db
    }

    /// Shadowing for the link between nodes `a` and `b` (global node
    /// keys). Symmetric and deterministic.
    pub fn link_shadow(&self, a: u32, b: u32) -> Db {
        if self.sigma_db == 0.0 {
            return Db::ZERO;
        }
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let key = (u64::from(lo) << 32) | u64::from(hi);
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seeds.seed_indexed("shadow", key));
        // Box–Muller from two uniforms; one Gaussian draw per link.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        Db(z * self.sigma_db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> Shadowing {
        Shadowing::new(SeedSeq::new(99), 6.0)
    }

    #[test]
    fn deterministic_per_link() {
        let f = field();
        assert_eq!(f.link_shadow(3, 8), f.link_shadow(3, 8));
    }

    #[test]
    fn symmetric_in_endpoints() {
        let f = field();
        for (a, b) in [(0, 1), (5, 17), (100, 2)] {
            assert_eq!(f.link_shadow(a, b), f.link_shadow(b, a));
        }
    }

    #[test]
    fn different_links_differ() {
        let f = field();
        assert_ne!(f.link_shadow(0, 1), f.link_shadow(0, 2));
        assert_ne!(f.link_shadow(0, 1), f.link_shadow(1, 2));
    }

    #[test]
    fn different_seeds_give_different_fields() {
        let f1 = Shadowing::new(SeedSeq::new(1), 6.0);
        let f2 = Shadowing::new(SeedSeq::new(2), 6.0);
        assert_ne!(f1.link_shadow(0, 1), f2.link_shadow(0, 1));
    }

    #[test]
    fn disabled_returns_zero() {
        let f = Shadowing::disabled(SeedSeq::new(5));
        assert_eq!(f.link_shadow(0, 1), Db::ZERO);
    }

    #[test]
    fn empirical_moments_match_sigma() {
        let f = field();
        let n = 4000u32;
        let samples: Vec<f64> = (0..n)
            .map(|i| f.link_shadow(i, i + 100_000).value())
            .collect();
        let mean = samples.iter().sum::<f64>() / f64::from(n);
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / f64::from(n - 1);
        assert!(mean.abs() < 0.3, "mean {mean} too far from 0");
        assert!(
            (var.sqrt() - 6.0).abs() < 0.3,
            "std {} too far from 6",
            var.sqrt()
        );
    }
}
