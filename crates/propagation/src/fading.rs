//! Per-subchannel block fading.
//!
//! Small-scale fading is what makes OFDMA worth having: different 180 kHz
//! resource blocks fade independently, so an LTE scheduler can put a weak
//! client on whichever subchannel currently peaks (paper §3.1, Fig 1c).
//! It also drives two paper mechanisms directly:
//!
//! * the CQI interference detector must not confuse a fade with an
//!   interferer (Fig 8), and
//! * Theorem 1's fading assumption — a freshly acquired subchannel is
//!   unusable with probability `p`, independently across hops.
//!
//! We model block fading: the power gain on a (link, subchannel) pair is
//! constant within a coherence block and redrawn independently across
//! blocks. Gains are Rayleigh (power ~ Exp(1)) by default, or Rician with
//! K-factor for strong line-of-sight links. Everything is derived
//! deterministically from (seed, link, subchannel, block index), so runs
//! are repeatable and MAC variants see identical channels.

use cellfi_types::rng::SeedSeq;
use cellfi_types::time::{Duration, Instant};
use cellfi_types::units::Db;
use cellfi_types::SubchannelId;
use rand::Rng;
use rand::SeedableRng;

/// Small-scale fading distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FadingKind {
    /// No fading: unit power gain. For exact-budget unit tests.
    None,
    /// Rayleigh fading: power gain ~ Exp(1) (0 dB mean).
    Rayleigh,
    /// Rician fading with linear K-factor (LOS-to-scatter power ratio).
    Rician {
        /// Ratio of line-of-sight power to scattered power (linear).
        k: f64,
    },
}

/// Deterministic per-(link, subchannel) block-fading process.
#[derive(Debug, Clone, Copy)]
pub struct BlockFading {
    kind: FadingKind,
    coherence: Duration,
    /// `seeds.seed("fading")`, hashed once at construction so per-draw
    /// seeding is a pure integer mix (no string hashing in hot loops).
    label_seed: u64,
}

impl BlockFading {
    /// Create a fading process. `coherence` is the block length: gains are
    /// constant within a block, independent across blocks.
    pub fn new(seeds: SeedSeq, kind: FadingKind, coherence: Duration) -> BlockFading {
        assert!(
            coherence > Duration::ZERO,
            "coherence time must be positive"
        );
        BlockFading {
            kind,
            coherence,
            label_seed: seeds.seed("fading"),
        }
    }

    /// Fading disabled (always 0 dB).
    pub fn disabled(seeds: SeedSeq) -> BlockFading {
        BlockFading::new(seeds, FadingKind::None, Duration::from_millis(100))
    }

    /// Pedestrian-speed outdoor default: Rayleigh with 100 ms coherence
    /// (≈ 3 km/h at 700 MHz).
    pub fn pedestrian(seeds: SeedSeq) -> BlockFading {
        BlockFading::new(seeds, FadingKind::Rayleigh, Duration::from_millis(100))
    }

    /// The coherence block length.
    pub fn coherence(&self) -> Duration {
        self.coherence
    }

    /// Power gain in dB for the given link (symmetric node pair),
    /// subchannel and instant.
    pub fn gain(&self, a: u32, b: u32, subchannel: SubchannelId, now: Instant) -> Db {
        if matches!(self.kind, FadingKind::None) {
            return Db::ZERO;
        }
        Db(10.0 * self.power(a, b, subchannel, now).max(1e-12).log10())
    }

    /// Linear power gain for the given link, subchannel and instant. The
    /// draw sequence is shared with [`BlockFading::gain`]; `None` fading
    /// reports exactly 1.0.
    pub fn power(&self, a: u32, b: u32, subchannel: SubchannelId, now: Instant) -> f64 {
        if matches!(self.kind, FadingKind::None) {
            return 1.0;
        }
        let key = self
            .lane_base(a, b, now)
            .wrapping_add(u64::from(subchannel.0) << 48);
        let mut rng = rand::rngs::StdRng::seed_from_u64(SeedSeq::seed_with(self.label_seed, key));
        self.draw_power(&mut rng)
    }

    /// Fill `out[s]` with the linear power gain of subchannel `s` for one
    /// link at one instant — the batched form of [`BlockFading::power`]
    /// used by the engine's flat-lane fading refresh. Bit-identical to
    /// per-subchannel `power` calls.
    pub fn fill_power_lane(&self, a: u32, b: u32, now: Instant, out: &mut [f64]) {
        if matches!(self.kind, FadingKind::None) {
            out.fill(1.0);
            return;
        }
        let base = self.lane_base(a, b, now);
        for (s, o) in out.iter_mut().enumerate() {
            let key = base.wrapping_add((s as u64) << 48);
            let mut rng =
                rand::rngs::StdRng::seed_from_u64(SeedSeq::seed_with(self.label_seed, key));
            *o = self.draw_power(&mut rng);
        }
    }

    /// Fold link and block into the subchannel-independent part of the
    /// stream index (the full key adds `subchannel << 48`).
    fn lane_base(&self, a: u32, b: u32, now: Instant) -> u64 {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let block = now.as_micros() / self.coherence.as_micros();
        let link_key = (u64::from(lo) << 32) | u64::from(hi);
        link_key
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(block)
    }

    fn draw_power(&self, rng: &mut rand::rngs::StdRng) -> f64 {
        match self.kind {
            FadingKind::None => 1.0,
            FadingKind::Rayleigh => {
                // Power ~ Exp(1): −ln U.
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                -u.ln()
            }
            FadingKind::Rician { k } => {
                // Complex Gaussian with LOS component; unit mean power.
                let sigma2 = 1.0 / (2.0 * (k + 1.0));
                let los = (k / (k + 1.0)).sqrt();
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen::<f64>();
                let r = (-2.0 * u1.ln()).sqrt();
                let g_re = r * (2.0 * std::f64::consts::PI * u2).cos() * sigma2.sqrt() + los;
                let g_im = r * (2.0 * std::f64::consts::PI * u2).sin() * sigma2.sqrt();
                g_re * g_re + g_im * g_im
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rayleigh() -> BlockFading {
        BlockFading::pedestrian(SeedSeq::new(7))
    }

    #[test]
    fn constant_within_coherence_block() {
        let f = rayleigh();
        let sc = SubchannelId::new(4);
        let a = f.gain(1, 2, sc, Instant::from_millis(10));
        let b = f.gain(1, 2, sc, Instant::from_millis(99));
        assert_eq!(a, b);
    }

    #[test]
    fn changes_across_blocks() {
        let f = rayleigh();
        let sc = SubchannelId::new(4);
        let a = f.gain(1, 2, sc, Instant::from_millis(10));
        let b = f.gain(1, 2, sc, Instant::from_millis(110));
        assert_ne!(a, b);
    }

    #[test]
    fn independent_across_subchannels() {
        let f = rayleigh();
        let t = Instant::from_millis(5);
        let a = f.gain(1, 2, SubchannelId::new(0), t);
        let b = f.gain(1, 2, SubchannelId::new(1), t);
        assert_ne!(a, b);
    }

    #[test]
    fn symmetric_in_link_endpoints() {
        let f = rayleigh();
        let t = Instant::from_millis(5);
        let sc = SubchannelId::new(3);
        assert_eq!(f.gain(4, 9, sc, t), f.gain(9, 4, sc, t));
    }

    #[test]
    fn disabled_is_zero_db() {
        let f = BlockFading::disabled(SeedSeq::new(1));
        assert_eq!(
            f.gain(0, 1, SubchannelId::new(0), Instant::from_millis(3)),
            Db::ZERO
        );
    }

    #[test]
    fn power_and_lane_fill_share_the_gain_draw_sequence() {
        for f in [
            rayleigh(),
            BlockFading::new(
                SeedSeq::new(7),
                FadingKind::Rician { k: 4.0 },
                Duration::from_millis(100),
            ),
            BlockFading::disabled(SeedSeq::new(7)),
        ] {
            let t = Instant::from_millis(37);
            let mut lane = vec![0.0; 13];
            f.fill_power_lane(3, 11, t, &mut lane);
            for (s, &p) in lane.iter().enumerate() {
                let sc = SubchannelId::new(s as u32);
                assert_eq!(p.to_bits(), f.power(3, 11, sc, t).to_bits());
                let from_power = Db(10.0 * p.max(1e-12).log10());
                let g = f.gain(3, 11, sc, t);
                assert_eq!(g.value().to_bits(), from_power.value().to_bits());
            }
        }
    }

    #[test]
    fn disabled_power_is_exactly_unity() {
        let f = BlockFading::disabled(SeedSeq::new(5));
        assert_eq!(f.power(0, 1, SubchannelId::new(2), Instant::ZERO), 1.0);
    }

    #[test]
    fn rayleigh_mean_power_is_unity() {
        let f = rayleigh();
        let n = 5000;
        let mean: f64 = (0..n)
            .map(|i| {
                f.gain(i, i + 1_000_000, SubchannelId::new(0), Instant::ZERO)
                    .to_linear()
            })
            .sum::<f64>()
            / f64::from(n);
        assert!((mean - 1.0).abs() < 0.08, "mean linear power {mean}");
    }

    #[test]
    fn rician_concentrates_with_large_k() {
        let seeds = SeedSeq::new(3);
        let strong_los = BlockFading::new(
            seeds,
            FadingKind::Rician { k: 50.0 },
            Duration::from_millis(100),
        );
        let n = 2000;
        let var: f64 = {
            let vals: Vec<f64> = (0..n)
                .map(|i| {
                    strong_los
                        .gain(i, i + 500_000, SubchannelId::new(0), Instant::ZERO)
                        .to_linear()
                })
                .collect();
            let mean = vals.iter().sum::<f64>() / f64::from(n);
            vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / f64::from(n)
        };
        // Rayleigh variance of linear power is 1; K=50 shrinks it hard.
        assert!(var < 0.1, "variance {var} too large for K=50");
    }

    #[test]
    fn deep_fade_probability_matches_exponential() {
        // P(power < 0.1) for Exp(1) is 1 − e^−0.1 ≈ 0.095. This is the `p`
        // in Theorem 1's fading assumption.
        let f = rayleigh();
        let n = 8000;
        let deep = (0..n)
            .filter(|&i| {
                f.gain(i, i + 2_000_000, SubchannelId::new(0), Instant::ZERO)
                    .to_linear()
                    < 0.1
            })
            .count();
        let frac = deep as f64 / f64::from(n);
        assert!((frac - 0.095).abs() < 0.02, "deep fade fraction {frac}");
    }
}
