//! # cellfi-propagation
//!
//! The radio-propagation substrate for every CellFi experiment. The paper
//! evaluated on a real 700 MHz outdoor testbed; this crate replaces that
//! hardware with models calibrated to the paper's own anchor points
//! (DESIGN.md §2):
//!
//! * 36 dBm EIRP reaches ≈ 1.3 km in the urban environment (Fig 1a);
//! * ≥ 1 Mbps TCP at 85 % of measured locations;
//! * the median downlink code rate is 1/2 (Fig 1b).
//!
//! Modules:
//!
//! * [`pathloss`] — free-space, log-distance, and the calibrated TVWS
//!   urban model.
//! * [`shadowing`] — per-link log-normal shadowing, deterministic in the
//!   link endpoints so paired experiments see identical terrain.
//! * [`fading`] — per-subchannel block fading (Rayleigh/Rician), the
//!   frequency selectivity that makes OFDMA subchannel choice matter.
//! * [`antenna`] — isotropic and 3GPP-pattern sector antennas (the paper
//!   uses a 7 dBi, ~120° sector).
//! * [`noise`] — thermal noise floor plus receiver noise figure.
//! * [`link`] — the combined [`link::RadioEnvironment`]: received power
//!   and per-subchannel SINR with arbitrary interferer sets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod antenna;
pub mod fading;
pub mod link;
pub mod noise;
pub mod pathloss;
pub mod shadowing;

pub use antenna::Antenna;
pub use fading::{BlockFading, FadingKind};
pub use link::{LinkEnd, RadioEnvironment, Transmission};
pub use noise::NoiseModel;
pub use pathloss::PathLossModel;
pub use shadowing::Shadowing;
