//! Receiver noise.
//!
//! Thermal noise at 290 K is −174 dBm/Hz; a bandwidth of B Hz collects
//! `−174 + 10·log10(B)` dBm, and the receiver front-end adds its noise
//! figure on top. For the paper's 5 MHz LTE channel with a typical 7 dB
//! small-cell/UE noise figure the floor is ≈ −100 dBm, which is the anchor
//! used to calibrate the 1.3 km cell edge.

use cellfi_types::units::{Db, Dbm, Hertz, MilliWatts};

/// Thermal noise density at 290 K, dBm per hertz.
pub const THERMAL_NOISE_DBM_PER_HZ: f64 = -174.0;

/// Receiver noise model: thermal floor plus noise figure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Receiver noise figure.
    pub noise_figure: Db,
}

impl NoiseModel {
    /// Typical consumer LTE/Wi-Fi receiver: 7 dB noise figure.
    pub const fn typical() -> NoiseModel {
        NoiseModel {
            noise_figure: Db(7.0),
        }
    }

    /// An ideal receiver (0 dB NF), for bounding checks.
    pub const fn ideal() -> NoiseModel {
        NoiseModel {
            noise_figure: Db(0.0),
        }
    }

    /// Noise floor over `bandwidth`.
    pub fn floor(&self, bandwidth: Hertz) -> Dbm {
        assert!(bandwidth.value() > 0.0, "bandwidth must be positive");
        Dbm(THERMAL_NOISE_DBM_PER_HZ + 10.0 * bandwidth.value().log10()) + self.noise_figure
    }

    /// Noise floor over `bandwidth` in linear milliwatts.
    pub fn floor_mw(&self, bandwidth: Hertz) -> MilliWatts {
        self.floor(bandwidth).to_milliwatts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_mhz_floor_near_minus_100() {
        let n = NoiseModel::typical().floor(Hertz::from_mhz(5.0));
        assert!((n.value() - (-100.0)).abs() < 0.1, "floor {n}");
    }

    #[test]
    fn one_hz_ideal_floor_is_thermal_density() {
        let n = NoiseModel::ideal().floor(Hertz(1.0));
        assert!((n.value() - (-174.0)).abs() < 1e-9);
    }

    #[test]
    fn subchannel_floor_scales_with_bandwidth() {
        // A 360 kHz subchannel collects 10·log10(360e3/5e6) ≈ −11.4 dB less
        // noise than the full 5 MHz channel.
        let m = NoiseModel::typical();
        let full = m.floor(Hertz::from_mhz(5.0));
        let sub = m.floor(Hertz::from_khz(360.0));
        assert!(((full - sub).value() - 11.42).abs() < 0.05);
    }

    #[test]
    fn noise_figure_adds_directly() {
        let bw = Hertz::from_mhz(20.0);
        let ideal = NoiseModel::ideal().floor(bw);
        let real = NoiseModel::typical().floor(bw);
        assert!(((real - ideal).value() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn linear_floor_matches_log() {
        let m = NoiseModel::typical();
        let bw = Hertz::from_mhz(5.0);
        let lin = m.floor_mw(bw);
        assert!((lin.to_dbm().value() - m.floor(bw).value()).abs() < 1e-9);
    }
}
