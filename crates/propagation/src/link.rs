//! Combined link budget and SINR computation.
//!
//! [`RadioEnvironment`] is the single source of truth for "what power does
//! node B receive from node A on subchannel k at time t". Both the LTE and
//! Wi-Fi engines, the interference-management sensing model, and the
//! experiment drivers all go through it, so every comparison in the
//! reproduction shares one propagation reality.
//!
//! The budget composes: TX power + TX antenna gain towards RX − path loss
//! − shadowing + fading + RX antenna gain towards TX. Interference is
//! summed in the linear domain; noise comes from [`NoiseModel`].

use crate::antenna::Antenna;
use crate::fading::BlockFading;
use crate::noise::NoiseModel;
use crate::pathloss::PathLossModel;
use crate::shadowing::Shadowing;
use cellfi_types::geo::Point;
use cellfi_types::time::Instant;
use cellfi_types::units::{sinr, Db, Dbm, Hertz, MilliWatts};
use cellfi_types::SubchannelId;

/// One end of a radio link: a node with a position and an antenna.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkEnd {
    /// Global node key, unique across APs and clients in one scenario.
    pub node: u32,
    /// Position in the simulation plane.
    pub position: Point,
    /// Azimuth antenna pattern.
    pub antenna: Antenna,
}

impl LinkEnd {
    /// Convenience constructor.
    pub fn new(node: u32, position: Point, antenna: Antenna) -> LinkEnd {
        LinkEnd {
            node,
            position,
            antenna,
        }
    }
}

/// An active transmission: a source and its conducted TX power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transmission {
    /// Transmitting terminal.
    pub from: LinkEnd,
    /// Conducted power fed into the antenna (EIRP = power + antenna gain).
    pub power: Dbm,
}

/// The composed propagation environment.
#[derive(Debug, Clone, Copy)]
pub struct RadioEnvironment {
    /// Large-scale path loss law.
    pub pathloss: PathLossModel,
    /// Per-link log-normal shadowing field.
    pub shadowing: Shadowing,
    /// Per-subchannel block fading process.
    pub fading: BlockFading,
    /// Receiver noise model.
    pub noise: NoiseModel,
    /// Carrier frequency.
    pub frequency: Hertz,
}

impl RadioEnvironment {
    /// Mean received power (path loss + shadowing + antennas, *no*
    /// fast fading). This is what RSSI measurement, cell association and
    /// carrier sensing react to.
    pub fn mean_rx_power(&self, tx: &LinkEnd, tx_power: Dbm, rx: &LinkEnd) -> Dbm {
        let d = tx.position.distance(rx.position);
        let pl = self.pathloss.path_loss(self.frequency, d);
        let sh = self.shadowing.link_shadow(tx.node, rx.node);
        let g_tx = tx.antenna.gain_towards(tx.position.bearing_to(rx.position));
        let g_rx = rx.antenna.gain_towards(rx.position.bearing_to(tx.position));
        tx_power + g_tx + g_rx - pl - sh
    }

    /// Instantaneous received power on one subchannel, including block
    /// fading.
    pub fn rx_power(
        &self,
        tx: &LinkEnd,
        tx_power: Dbm,
        rx: &LinkEnd,
        subchannel: SubchannelId,
        now: Instant,
    ) -> Dbm {
        self.mean_rx_power(tx, tx_power, rx) + self.fading.gain(tx.node, rx.node, subchannel, now)
    }

    /// SINR at `rx` for the `serving` transmission on `subchannel`, given
    /// concurrent `interferers`, over `bandwidth` of noise.
    pub fn subchannel_sinr(
        &self,
        serving: &Transmission,
        rx: &LinkEnd,
        interferers: &[Transmission],
        subchannel: SubchannelId,
        now: Instant,
        bandwidth: Hertz,
    ) -> Db {
        let s = self
            .rx_power(&serving.from, serving.power, rx, subchannel, now)
            .to_milliwatts();
        let i: MilliWatts = interferers
            .iter()
            .filter(|t| t.from.node != serving.from.node)
            .map(|t| {
                self.rx_power(&t.from, t.power, rx, subchannel, now)
                    .to_milliwatts()
            })
            .sum();
        sinr(s, i, self.noise.floor_mw(bandwidth))
    }

    /// Mean SNR (no fading, no interference) — the quantity the paper's
    /// Fig 2 equalizes between the 802.11ac and 802.11af scenarios.
    pub fn mean_snr(&self, tx: &LinkEnd, tx_power: Dbm, rx: &LinkEnd, bandwidth: Hertz) -> Db {
        self.mean_rx_power(tx, tx_power, rx) - self.noise.floor(bandwidth)
    }

    /// Total received power at `rx` from a set of transmissions (for
    /// energy-detect carrier sensing in the Wi-Fi engine), without fading.
    pub fn total_mean_power(&self, rx: &LinkEnd, transmissions: &[Transmission]) -> Dbm {
        transmissions
            .iter()
            .filter(|t| t.from.node != rx.node)
            .map(|t| self.mean_rx_power(&t.from, t.power, rx).to_milliwatts())
            .sum::<MilliWatts>()
            .to_dbm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellfi_types::rng::SeedSeq;
    use cellfi_types::units::Meters;

    fn quiet_env() -> RadioEnvironment {
        let seeds = SeedSeq::new(11);
        RadioEnvironment {
            pathloss: PathLossModel::tvws_urban(),
            shadowing: Shadowing::disabled(seeds),
            fading: BlockFading::disabled(seeds),
            noise: NoiseModel::typical(),
            frequency: Hertz(700e6),
        }
    }

    fn ap_at(node: u32, x: f64, y: f64) -> LinkEnd {
        LinkEnd::new(node, Point::new(x, y), Antenna::Isotropic { gain: Db(6.0) })
    }

    fn ue_at(node: u32, x: f64, y: f64) -> LinkEnd {
        LinkEnd::new(node, Point::new(x, y), Antenna::client())
    }

    #[test]
    fn budget_composes_gains_and_loss() {
        let env = quiet_env();
        let ap = ap_at(0, 0.0, 0.0);
        let ue = ue_at(1, 500.0, 0.0);
        let rx = env.mean_rx_power(&ap, Dbm(29.0), &ue);
        let expected =
            29.0 + 6.0 + 0.0 - env.pathloss.path_loss(env.frequency, Meters(500.0)).value();
        assert!((rx.value() - expected).abs() < 1e-9, "rx {rx}");
    }

    #[test]
    fn paper_range_anchor_one_mbps_at_1_3km() {
        // 29 dBm + 6 dBi ≈ 35–36 dBm EIRP must land near the −100 dBm floor
        // at 1.3 km: the Fig 1(a) cell edge.
        let env = quiet_env();
        let ap = ap_at(0, 0.0, 0.0);
        let ue = ue_at(1, 1300.0, 0.0);
        let snr = env.mean_snr(&ap, Dbm(30.0), &ue, Hertz::from_mhz(5.0));
        assert!(
            snr.value() > -2.5 && snr.value() < 2.5,
            "edge SNR {snr} out of calibration"
        );
    }

    #[test]
    fn sinr_without_interferers_equals_snr() {
        let env = quiet_env();
        let ap = ap_at(0, 0.0, 0.0);
        let ue = ue_at(1, 400.0, 0.0);
        let tx = Transmission {
            from: ap,
            power: Dbm(30.0),
        };
        let sinr = env.subchannel_sinr(
            &tx,
            &ue,
            &[],
            SubchannelId::new(0),
            Instant::ZERO,
            Hertz::from_mhz(5.0),
        );
        let snr = env.mean_snr(&ap, Dbm(30.0), &ue, Hertz::from_mhz(5.0));
        assert!((sinr.value() - snr.value()).abs() < 1e-9);
    }

    #[test]
    fn equidistant_equal_power_interferer_gives_near_zero_sinr() {
        let env = quiet_env();
        let serving = ap_at(0, 0.0, 0.0);
        let interferer = ap_at(2, 800.0, 0.0);
        let ue = ue_at(1, 400.0, 0.0);
        let s = Transmission {
            from: serving,
            power: Dbm(30.0),
        };
        let i = Transmission {
            from: interferer,
            power: Dbm(30.0),
        };
        let v = env.subchannel_sinr(
            &s,
            &ue,
            &[i],
            SubchannelId::new(0),
            Instant::ZERO,
            Hertz::from_mhz(5.0),
        );
        assert!(v.value() < 0.5 && v.value() > -1.0, "sinr {v}");
    }

    #[test]
    fn serving_cell_excluded_from_its_own_interference() {
        let env = quiet_env();
        let serving = ap_at(0, 0.0, 0.0);
        let ue = ue_at(1, 300.0, 0.0);
        let s = Transmission {
            from: serving,
            power: Dbm(30.0),
        };
        // Pass the serving transmission in the interferer list too; it must
        // be filtered by node key.
        let with = env.subchannel_sinr(
            &s,
            &ue,
            &[s],
            SubchannelId::new(0),
            Instant::ZERO,
            Hertz::from_mhz(5.0),
        );
        let without = env.subchannel_sinr(
            &s,
            &ue,
            &[],
            SubchannelId::new(0),
            Instant::ZERO,
            Hertz::from_mhz(5.0),
        );
        assert_eq!(with, without);
    }

    #[test]
    fn total_power_sums_multiple_sources() {
        let env = quiet_env();
        let a = ap_at(0, 0.0, 0.0);
        let b = ap_at(2, 0.0, 0.0);
        let rx = ue_at(1, 400.0, 0.0);
        let txs = [
            Transmission {
                from: a,
                power: Dbm(30.0),
            },
            Transmission {
                from: b,
                power: Dbm(30.0),
            },
        ];
        let single = env.mean_rx_power(&a, Dbm(30.0), &rx);
        let total = env.total_mean_power(&rx, &txs);
        assert!(((total - single).value() - 3.01).abs() < 0.02);
    }

    #[test]
    fn sector_antenna_shapes_the_cell() {
        let seeds = SeedSeq::new(11);
        let env = RadioEnvironment {
            pathloss: PathLossModel::tvws_urban(),
            shadowing: Shadowing::disabled(seeds),
            fading: BlockFading::disabled(seeds),
            noise: NoiseModel::typical(),
            frequency: Hertz(700e6),
        };
        let ap = LinkEnd::new(0, Point::ORIGIN, Antenna::paper_sector(0.0));
        let front = ue_at(1, 400.0, 0.0);
        let back = ue_at(2, -400.0, 0.0);
        let f = env.mean_rx_power(&ap, Dbm(29.0), &front);
        let b = env.mean_rx_power(&ap, Dbm(29.0), &back);
        // Parabolic pattern: 27 dB front-to-rear difference (see antenna tests).
        assert!(((f - b).value() - 27.0).abs() < 0.1, "front/back {f} {b}");
    }

    #[test]
    fn fading_moves_subchannels_independently() {
        let seeds = SeedSeq::new(11);
        let env = RadioEnvironment {
            pathloss: PathLossModel::tvws_urban(),
            shadowing: Shadowing::disabled(seeds),
            fading: BlockFading::pedestrian(seeds),
            noise: NoiseModel::typical(),
            frequency: Hertz(700e6),
        };
        let ap = ap_at(0, 0.0, 0.0);
        let ue = ue_at(1, 600.0, 0.0);
        let p0 = env.rx_power(&ap, Dbm(30.0), &ue, SubchannelId::new(0), Instant::ZERO);
        let p1 = env.rx_power(&ap, Dbm(30.0), &ue, SubchannelId::new(1), Instant::ZERO);
        assert_ne!(p0, p1);
    }
}
