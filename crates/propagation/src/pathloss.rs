//! Large-scale path loss models.
//!
//! The calibrated model of record is [`PathLossModel::tvws_urban`]: a
//! log-distance law anchored at the free-space loss at 1 m with exponent
//! 3.44, which puts the 36 dBm-EIRP cell edge (SINR ≈ 0 dB over 5 MHz) at
//! ≈ 1.3 km — the range the paper measured in Fig 1(a).

use cellfi_types::units::{Db, Hertz, Meters};

/// Speed of light, m/s.
const C: f64 = 299_792_458.0;

/// A large-scale path loss model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PathLossModel {
    /// Free-space (Friis) propagation. Used for sanity checks and for the
    /// short indoor SDR experiments.
    FreeSpace,
    /// Log-distance: free-space loss up to `reference` distance, then
    /// `10·exponent·log10(d/reference)` beyond it.
    LogDistance {
        /// Path loss exponent (2 = free space, 3–4 = urban).
        exponent: f64,
        /// Reference distance at which free-space loss applies.
        reference: Meters,
    },
    /// Indoor office model: free space to 10 m then exponent 4.2 with an
    /// extra fixed wall loss. Used for the 802.11ac home-Wi-Fi baseline in
    /// Fig 2, which must have *worse propagation but equal SNR* per the
    /// paper's setup.
    IndoorOffice {
        /// Aggregate wall/floor penetration loss.
        wall_loss: Db,
    },
}

impl PathLossModel {
    /// The calibrated outdoor urban UHF model used throughout the paper
    /// reproduction (see module docs).
    pub const fn tvws_urban() -> PathLossModel {
        PathLossModel::LogDistance {
            exponent: 3.44,
            reference: Meters(1.0),
        }
    }

    /// Free-space path loss in dB at frequency `freq` and distance `d`.
    fn free_space(freq: Hertz, d: Meters) -> Db {
        let d = d.value().max(0.1); // clamp to avoid log(0) inside 10 cm
        Db(20.0 * (4.0 * std::f64::consts::PI * d * freq.value() / C).log10())
    }

    /// Path loss in dB for a link of length `distance` at `freq`.
    pub fn path_loss(&self, freq: Hertz, distance: Meters) -> Db {
        match *self {
            PathLossModel::FreeSpace => Self::free_space(freq, distance),
            PathLossModel::LogDistance {
                exponent,
                reference,
            } => {
                let d = distance.value().max(reference.value());
                let base = Self::free_space(freq, reference);
                Db(base.value() + 10.0 * exponent * (d / reference.value()).log10())
            }
            PathLossModel::IndoorOffice { wall_loss } => {
                let break_point = Meters(10.0);
                let d = distance.value();
                if d <= break_point.value() {
                    Self::free_space(freq, distance)
                } else {
                    let base = Self::free_space(freq, break_point);
                    Db(base.value()
                        + 10.0 * 4.2 * (d / break_point.value()).log10()
                        + wall_loss.value())
                }
            }
        }
    }

    /// Invert the model: the distance at which path loss reaches
    /// `target`. Solved in closed form for free-space/log-distance and by
    /// bisection for the indoor model. Returns `None` if the target is
    /// below the model's minimum loss.
    pub fn range_for_loss(&self, freq: Hertz, target: Db) -> Option<Meters> {
        match *self {
            PathLossModel::FreeSpace => {
                let d = C / (4.0 * std::f64::consts::PI * freq.value())
                    // cellfi-lint: allow(units) — inverse free-space solve:
                    // 10^(L/20) is an amplitude (distance) factor, not a
                    // dB→power conversion, so no units helper applies.
                    * 10f64.powf(target.value() / 20.0);
                (d > 0.0).then_some(Meters(d))
            }
            PathLossModel::LogDistance {
                exponent,
                reference,
            } => {
                let base = Self::free_space(freq, reference);
                if target.value() < base.value() {
                    return None;
                }
                let d = reference.value()
                    // cellfi-lint: allow(units) — closed-form inversion of
                    // 10·n·log10(d/d0): the exponent-scaled power is a
                    // distance ratio, not a dB→power conversion.
                    * 10f64.powf((target.value() - base.value()) / (10.0 * exponent));
                Some(Meters(d))
            }
            PathLossModel::IndoorOffice { .. } => {
                let (mut lo, mut hi) = (0.1f64, 100_000.0f64);
                if self.path_loss(freq, Meters(lo)).value() > target.value() {
                    return None;
                }
                for _ in 0..64 {
                    let mid = (lo + hi) / 2.0;
                    if self.path_loss(freq, Meters(mid)).value() < target.value() {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                Some(Meters(lo))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F700: Hertz = Hertz(700e6);

    #[test]
    fn free_space_one_meter_700mhz() {
        // FSPL(1 m, 700 MHz) ≈ 29.3 dB.
        let pl = PathLossModel::FreeSpace.path_loss(F700, Meters(1.0));
        assert!((pl.value() - 29.35).abs() < 0.1, "got {pl}");
    }

    #[test]
    fn free_space_doubling_distance_adds_six_db() {
        let m = PathLossModel::FreeSpace;
        let a = m.path_loss(F700, Meters(100.0));
        let b = m.path_loss(F700, Meters(200.0));
        assert!((b.value() - a.value() - 6.02).abs() < 0.01);
    }

    #[test]
    fn log_distance_matches_free_space_at_reference() {
        let m = PathLossModel::tvws_urban();
        let fs = PathLossModel::FreeSpace.path_loss(F700, Meters(1.0));
        assert!((m.path_loss(F700, Meters(1.0)).value() - fs.value()).abs() < 1e-9);
    }

    #[test]
    fn urban_calibration_puts_cell_edge_near_1300m() {
        // Paper anchor: 36 dBm EIRP, noise floor ≈ −100 dBm over 5 MHz,
        // SINR 0 dB edge → max tolerable loss 136 dB → range ≈ 1.3 km.
        let m = PathLossModel::tvws_urban();
        let pl = m.path_loss(F700, Meters(1300.0));
        assert!(
            (pl.value() - 136.5).abs() < 1.5,
            "loss at 1.3 km was {pl}, expected ≈136.5 dB"
        );
    }

    #[test]
    fn urban_monotonic_in_distance() {
        let m = PathLossModel::tvws_urban();
        let mut last = 0.0;
        for d in [1.0, 10.0, 50.0, 200.0, 600.0, 1300.0, 2000.0] {
            let pl = m.path_loss(F700, Meters(d)).value();
            assert!(pl > last, "not monotonic at {d} m");
            last = pl;
        }
    }

    #[test]
    fn loss_below_reference_is_clamped() {
        let m = PathLossModel::tvws_urban();
        let at_ref = m.path_loss(F700, Meters(1.0));
        let closer = m.path_loss(F700, Meters(0.2));
        assert_eq!(at_ref, closer);
    }

    #[test]
    fn range_inversion_round_trips() {
        let models = [
            PathLossModel::FreeSpace,
            PathLossModel::tvws_urban(),
            PathLossModel::IndoorOffice {
                wall_loss: Db(10.0),
            },
        ];
        for m in models {
            let d0 = Meters(400.0);
            let loss = m.path_loss(F700, d0);
            let d = m.range_for_loss(F700, loss).unwrap();
            assert!(
                (d.value() - d0.value()).abs() / d0.value() < 1e-3,
                "{m:?}: {} != {}",
                d,
                d0
            );
        }
    }

    #[test]
    fn range_for_unreachable_loss_is_none() {
        let m = PathLossModel::tvws_urban();
        assert!(m.range_for_loss(F700, Db(5.0)).is_none());
    }

    #[test]
    fn indoor_lossier_than_urban_at_same_distance() {
        // Fig 2 setup: the home-Wi-Fi network has worse propagation, so its
        // range shrinks relative to outdoor TVWS at equal loss budget.
        let indoor = PathLossModel::IndoorOffice {
            wall_loss: Db(10.0),
        };
        let urban = PathLossModel::tvws_urban();
        let d = Meters(150.0);
        assert!(indoor.path_loss(F700, d).value() > urban.path_loss(F700, d).value());
    }

    #[test]
    fn higher_frequency_increases_loss() {
        let m = PathLossModel::tvws_urban();
        let low = m.path_loss(Hertz(600e6), Meters(500.0));
        let high = m.path_loss(Hertz(5.8e9), Meters(500.0));
        assert!(high.value() - low.value() > 15.0);
    }
}
