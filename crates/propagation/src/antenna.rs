//! Antenna patterns.
//!
//! The paper's access points use an Amphenol directional antenna with
//! ~7 dBi gain and a ~120° sector (§6.1); clients are handheld devices
//! with isotropic antennas. The sector pattern follows the standard 3GPP
//! parabolic model: `G(θ) = G_max − min(12·(θ/θ_3dB)², A_max)`.

use cellfi_types::geo::wrap_angle;
use cellfi_types::units::Db;

/// An antenna with an azimuth gain pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Antenna {
    /// Uniform gain in all directions.
    Isotropic {
        /// Peak (and only) gain.
        gain: Db,
    },
    /// 3GPP parabolic sector pattern.
    Sector {
        /// Boresight azimuth, radians CCW from east.
        boresight: f64,
        /// 3 dB beamwidth in radians (the paper's antenna: ~120° ≈ 2.09).
        beamwidth: f64,
        /// Peak gain at boresight.
        gain: Db,
        /// Maximum attenuation behind the sector (front-to-back ratio).
        front_to_back: Db,
    },
}

impl Antenna {
    /// The paper's access-point antenna: 7 dBi, 120° sector. Panel
    /// antennas of this class specify ≥ 30 dB front-to-back, which is
    /// what lets the Fig 7 co-sited cells reach +30 dB SINR in one
    /// direction and −15 dB in the other.
    pub fn paper_sector(boresight: f64) -> Antenna {
        Antenna::Sector {
            boresight,
            beamwidth: 120f64.to_radians(),
            gain: Db(7.0),
            front_to_back: Db(30.0),
        }
    }

    /// A unity-gain client antenna.
    pub const fn client() -> Antenna {
        Antenna::Isotropic { gain: Db(0.0) }
    }

    /// Gain towards `bearing` (radians CCW from east).
    pub fn gain_towards(&self, bearing: f64) -> Db {
        match *self {
            Antenna::Isotropic { gain } => gain,
            Antenna::Sector {
                boresight,
                beamwidth,
                gain,
                front_to_back,
            } => {
                let theta = wrap_angle(bearing - boresight);
                // 12·(θ/θ3dB)² with θ3dB = beamwidth; at θ = ±beamwidth/2
                // the attenuation is exactly 3 dB.
                let attenuation = (12.0 * (theta / beamwidth).powi(2)).min(front_to_back.value());
                gain - Db(attenuation)
            }
        }
    }

    /// Peak gain of the pattern.
    pub fn peak_gain(&self) -> Db {
        match *self {
            Antenna::Isotropic { gain } => gain,
            Antenna::Sector { gain, .. } => gain,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn isotropic_uniform_gain() {
        let a = Antenna::Isotropic { gain: Db(2.0) };
        for b in [-PI, -1.0, 0.0, 0.5, PI] {
            assert_eq!(a.gain_towards(b), Db(2.0));
        }
    }

    #[test]
    fn sector_peak_at_boresight() {
        let a = Antenna::paper_sector(0.3);
        assert!((a.gain_towards(0.3).value() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn sector_loses_three_db_at_half_beamwidth() {
        let a = Antenna::paper_sector(0.0);
        let edge = 60f64.to_radians();
        let g = a.gain_towards(edge);
        assert!((g.value() - 4.0).abs() < 0.01, "edge gain {g}");
    }

    #[test]
    fn sector_back_lobe_clamped_at_front_to_back() {
        let a = Antenna::paper_sector(0.0);
        let g = a.gain_towards(PI);
        // The parabolic roll-off reaches 12·(180/120)² = 27 dB at the rear,
        // below the 30 dB front-to-back clamp, so the pattern's own shape
        // is binding: 7 − 27 = −20 dB.
        assert!((g.value() - (7.0 - 27.0)).abs() < 1e-9, "back gain {g}");
        // A tighter clamp binds instead.
        let tight = Antenna::Sector {
            boresight: 0.0,
            beamwidth: 120f64.to_radians(),
            gain: Db(7.0),
            front_to_back: Db(20.0),
        };
        assert!((tight.gain_towards(PI).value() - (7.0 - 20.0)).abs() < 1e-9);
    }

    #[test]
    fn sector_symmetric_about_boresight() {
        let a = Antenna::paper_sector(1.0);
        let left = a.gain_towards(1.0 - 0.7);
        let right = a.gain_towards(1.0 + 0.7);
        assert!((left.value() - right.value()).abs() < 1e-9);
    }

    #[test]
    fn sector_monotone_away_from_boresight_until_clamp() {
        let a = Antenna::paper_sector(0.0);
        let mut last = f64::INFINITY;
        for i in 0..10 {
            let theta = f64::from(i) * 0.15;
            let g = a.gain_towards(theta).value();
            assert!(g <= last + 1e-12, "gain rose at θ={theta}");
            last = g;
        }
    }

    #[test]
    fn wrapping_across_pi_boundary() {
        let a = Antenna::paper_sector(PI - 0.1);
        // Just across the ±π seam should still be near boresight.
        let g = a.gain_towards(-PI + 0.1);
        assert!(g.value() > 6.0, "seam gain {g}");
    }

    #[test]
    fn peak_gain_reports_pattern_max() {
        assert_eq!(Antenna::client().peak_gain(), Db(0.0));
        assert_eq!(Antenna::paper_sector(0.0).peak_gain(), Db(7.0));
    }
}
