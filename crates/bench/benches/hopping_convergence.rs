//! Hopping convergence (Theorem 1, §5.5).
//!
//! Times the abstract hopping process to convergence across network
//! sizes and fading probabilities — the empirical side of the
//! `O(M·log n/((1−p)·γ))` bound. Wall-clock here tracks rounds (work per
//! round is O(n·M)), so a superlogarithmic blow-up in rounds would show
//! as a regression.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cellfi_core::theory::HoppingProcess;
use cellfi_core::ConflictGraph;

fn ring(n: u32) -> ConflictGraph {
    let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    ConflictGraph::from_edges(n as usize, &edges)
}

fn bench_scaling_in_n(c: &mut Criterion) {
    let mut g = c.benchmark_group("hopping_convergence/n");
    for n in [8u32, 16, 32, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut p = HoppingProcess::new(ring(n), vec![3; n as usize], 13, 0.0, 5);
                black_box(p.run(100_000).expect("slack instance converges"))
            })
        });
    }
    g.finish();
}

fn bench_scaling_in_fading(c: &mut Criterion) {
    let mut g = c.benchmark_group("hopping_convergence/p");
    for p_fading in [0.0f64, 0.3, 0.6] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{p_fading:.1}")),
            &p_fading,
            |b, &p_fading| {
                b.iter(|| {
                    let mut p = HoppingProcess::new(ring(16), vec![3; 16], 13, p_fading, 7);
                    black_box(p.run(100_000).expect("converges"))
                })
            },
        );
    }
    g.finish();
}

fn bench_single_round(c: &mut Criterion) {
    c.bench_function("hopping_convergence/single_round_64", |b| {
        let mut p = HoppingProcess::new(ring(64), vec![3; 64], 13, 0.2, 9);
        b.iter(|| {
            p.step();
            black_box(p.rounds())
        })
    });
}

criterion_group! {
    name = hopping;
    config = Criterion::default().sample_size(20);
    targets = bench_scaling_in_n, bench_scaling_in_fading, bench_single_round
}
criterion_main!(hopping);
