//! Micro-benchmarks of hot simulator kernels: link-budget evaluation,
//! CQI mapping, the PF scheduler, the CQI interference detector, and one
//! LTE engine subframe. These are the per-sample costs every figure's
//! wall-clock is built from.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cellfi_core::sensing::CqiInterferenceDetector;
use cellfi_lte::amc::CqiTable;
use cellfi_lte::scheduler::{Scheduler, SchedulerKind, UeDemand};
use cellfi_propagation::antenna::Antenna;
use cellfi_propagation::fading::BlockFading;
use cellfi_propagation::link::{LinkEnd, RadioEnvironment, Transmission};
use cellfi_propagation::noise::NoiseModel;
use cellfi_propagation::pathloss::PathLossModel;
use cellfi_propagation::shadowing::Shadowing;
use cellfi_sim::engine::{ImMode, LteEngine, LteEngineConfig};
use cellfi_sim::topology::{Scenario, ScenarioConfig};
use cellfi_types::geo::Point;
use cellfi_types::rng::SeedSeq;
use cellfi_types::time::Instant;
use cellfi_types::units::{Db, Dbm, Hertz};
use cellfi_types::{SubchannelId, UeId};

fn env() -> RadioEnvironment {
    let seeds = SeedSeq::new(2);
    RadioEnvironment {
        pathloss: PathLossModel::tvws_urban(),
        shadowing: Shadowing::new(seeds, 4.0),
        fading: BlockFading::pedestrian(seeds),
        noise: NoiseModel::typical(),
        frequency: Hertz(700e6),
    }
}

fn bench_link_budget(c: &mut Criterion) {
    let e = env();
    let ap = LinkEnd::new(0, Point::ORIGIN, Antenna::paper_sector(0.3));
    let ue = LinkEnd::new(1000, Point::new(700.0, 150.0), Antenna::client());
    c.bench_function("micro/mean_rx_power", |b| {
        b.iter(|| black_box(e.mean_rx_power(&ap, Dbm(30.0), &ue)))
    });
    let interferers: Vec<Transmission> = (0..8)
        .map(|i| Transmission {
            from: LinkEnd::new(
                10 + i,
                Point::new(f64::from(i) * 300.0, -400.0),
                Antenna::Isotropic { gain: Db(6.0) },
            ),
            power: Dbm(30.0),
        })
        .collect();
    let serving = Transmission {
        from: ap,
        power: Dbm(30.0),
    };
    c.bench_function("micro/subchannel_sinr_8_interferers", |b| {
        b.iter(|| {
            black_box(e.subchannel_sinr(
                &serving,
                &ue,
                &interferers,
                SubchannelId::new(4),
                Instant::from_millis(7),
                Hertz::from_khz(360.0),
            ))
        })
    });
}

fn bench_amc(c: &mut Criterion) {
    let t = CqiTable;
    c.bench_function("micro/cqi_for_sinr", |b| {
        b.iter(|| black_box(t.cqi_for_sinr(Db(black_box(7.3)))))
    });
    c.bench_function("micro/bler", |b| {
        b.iter(|| black_box(t.bler(cellfi_lte::amc::Cqi(7), Db(black_box(6.1)))))
    });
}

fn bench_scheduler(c: &mut Criterion) {
    let demands: Vec<UeDemand> = (0..6)
        .map(|u| UeDemand {
            ue: UeId::new(u),
            backlog_bits: 1_000_000,
            rate_per_subchannel: (0..13).map(|s| 500.0 + f64::from(s * u)).collect(),
        })
        .collect();
    let allowed = vec![true; 13];
    c.bench_function("micro/pf_allocate_6ue_13sc", |b| {
        let mut s = Scheduler::new(SchedulerKind::ProportionalFair);
        b.iter(|| black_box(s.allocate(&allowed, &demands)))
    });
}

fn bench_cqi_detector(c: &mut Criterion) {
    c.bench_function("micro/cqi_detector_push", |b| {
        let mut d = CqiInterferenceDetector::default();
        let mut i = 0u8;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(d.push(8 + (i % 5)))
        })
    });
}

fn bench_engine_subframe(c: &mut Criterion) {
    let scenario = Scenario::generate(ScenarioConfig::paper_default(10, 6), SeedSeq::new(3));
    let mut e = LteEngine::new(
        scenario,
        LteEngineConfig::paper_default(ImMode::CellFi),
        SeedSeq::new(4),
    );
    e.backlog_all(u64::MAX / 4);
    c.bench_function("micro/engine_subframe_10aps_60ues", |b| {
        b.iter(|| black_box(e.step_subframe()))
    });
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(30);
    targets = bench_link_budget, bench_amc, bench_scheduler, bench_cqi_detector,
        bench_engine_subframe
}
criterion_main!(micro);
