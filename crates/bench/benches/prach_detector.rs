//! PRACH detector speed (§6.3.3).
//!
//! The paper's claim: the timing-free two-correlation detector runs 16×
//! faster than line rate on an i7. One PRACH occasion is an 800 µs
//! preamble; this bench times a full detection (839-lag correlation
//! profile + peak test) and Criterion's report divided into 800 µs gives
//! the line-rate ratio. A companion function prints the ratio directly.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cellfi_lte::prach::{
    awgn_channel, preamble, zc_root, Complex, PrachDetector, N_ZC, PREAMBLE_DURATION_US,
};
use cellfi_types::units::Db;
use rand::SeedableRng;

fn received_window(snr_db: f64) -> Vec<Complex> {
    let root = zc_root(129);
    let tx = preamble(&root, 100);
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    awgn_channel(&tx, 250, Db(snr_db), &mut rng)
}

fn bench_detect(c: &mut Criterion) {
    let det = PrachDetector::new(129);
    let rx = received_window(-10.0);
    c.bench_function("prach_detector/detect_full_window", |b| {
        b.iter(|| black_box(det.detect(black_box(&rx))))
    });
    // Report the paper-style headline once per bench run. Warm up one
    // detection outside the timed region so setup (cold caches, plan
    // construction) doesn't bill against the steady-state rate.
    let reps: u32 = 20;
    let mut hits = u32::from(det.detect(&rx).detected);
    let t0 = std::time::Instant::now();
    for _ in 0..reps {
        hits += u32::from(det.detect(&rx).detected);
    }
    let per_us = t0.elapsed().as_secs_f64() * 1e6 / f64::from(reps);
    assert_eq!(hits, reps + 1, "detector must fire at -10 dB");
    println!(
        "\nprach_detector: {per_us:.0} µs per {PREAMBLE_DURATION_US:.0} µs occasion \
         => {:.1}x line rate (paper: 16x)\n",
        PREAMBLE_DURATION_US / per_us
    );
}

fn bench_profile_only(c: &mut Criterion) {
    let det = PrachDetector::new(129);
    let rx = received_window(0.0);
    c.bench_function("prach_detector/correlation_profile", |b| {
        b.iter(|| black_box(det.correlation_profile(black_box(&rx))))
    });
}

fn bench_generation(c: &mut Criterion) {
    c.bench_function("prach_detector/zc_root_generation", |b| {
        b.iter(|| black_box(zc_root(129)))
    });
    let root = zc_root(129);
    c.bench_function("prach_detector/preamble_shift", |b| {
        b.iter(|| black_box(preamble(&root, 419)))
    });
    let _ = N_ZC;
}

criterion_group! {
    name = prach;
    config = Criterion::default().sample_size(20);
    targets = bench_detect, bench_profile_only, bench_generation
}
criterion_main!(prach);
