//! One Criterion group per paper table/figure.
//!
//! Each group times the *kernel* of the experiment that regenerates the
//! corresponding table or figure (full sweeps live in the `exp` binary:
//! `cargo run --release -p cellfi-sim --bin exp -- all`). Benching the
//! kernels keeps `cargo bench` minutes-long while still covering every
//! table and figure's code path and tracking regressions in each.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cellfi_sim::engine::{ImMode, LteEngine, LteEngineConfig};
use cellfi_sim::experiments::{self, ExpConfig};
use cellfi_sim::topology::{Scenario, ScenarioConfig};
use cellfi_sim::wifi_engine::WifiEngine;
use cellfi_types::rng::SeedSeq;
use cellfi_types::time::Instant;
use cellfi_wifi::sim::WifiConfig;

fn quick() -> ExpConfig {
    ExpConfig {
        seed: 1,
        quick: true,
    }
}

/// Table 1: regenerated from implementation constants.
fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1", |b| {
        b.iter(|| black_box(experiments::table1::run(quick())))
    });
}

/// Fig 1: one drive-test location (2 s link-level simulation).
fn bench_fig1(c: &mut Criterion) {
    c.bench_function("fig1_range", |b| {
        b.iter(|| black_box(experiments::fig1::drive_test(quick())))
    });
}

/// Fig 2: one second of the outdoor 802.11af CSMA simulation.
fn bench_fig2(c: &mut Criterion) {
    let mut cfg = ScenarioConfig::paper_default(4, 3);
    cfg.shadowing_sigma = 0.0;
    let scenario = Scenario::generate(cfg, SeedSeq::new(3));
    c.bench_function("fig2_wifi_mac", |b| {
        b.iter(|| {
            let mut e = WifiEngine::new(&scenario, WifiConfig::af_default(), SeedSeq::new(4));
            e.backlog_all(1 << 30);
            e.run_until(Instant::from_millis(1_000));
            black_box(e.delivered_bytes().to_vec())
        })
    });
}

/// Fig 6: the full database vacate/reacquire timeline.
fn bench_fig6(c: &mut Criterion) {
    c.bench_function("fig6_vacate", |b| {
        b.iter(|| black_box(experiments::fig6::timeline()))
    });
}

/// Fig 7: the two-cell interference walk.
fn bench_fig7(c: &mut Criterion) {
    c.bench_function("fig7_interference", |b| {
        b.iter(|| black_box(experiments::fig7::walk(quick())))
    });
}

/// Fig 8: the CQI-detector ON/OFF timeline (5 s at 2 ms samples).
fn bench_fig8(c: &mut Criterion) {
    c.bench_function("fig8_cqi_detector", |b| {
        b.iter(|| black_box(experiments::fig8::run_timeline(quick())))
    });
}

/// §6.3.3 PRACH: one full detection at −10 dB.
fn bench_prach_experiment(c: &mut Criterion) {
    c.bench_function("prach_experiment", |b| {
        b.iter(|| {
            black_box(experiments::prach::detection_probability(
                cellfi_types::units::Db(-10.0),
                3,
                7,
            ))
        })
    });
}

/// Fig 9(a)/(b) kernel: one second of the LTE system engine per mode at
/// the densest setting.
fn bench_fig9_engine(c: &mut Criterion) {
    let scenario = Scenario::generate(ScenarioConfig::paper_default(14, 6), SeedSeq::new(9));
    let mut g = c.benchmark_group("fig9_engine_second");
    for (name, mode) in [
        ("fig9a_coverage/plain", ImMode::PlainLte),
        ("fig9a_coverage/cellfi", ImMode::CellFi),
        ("fig9b_throughput/oracle", ImMode::Oracle),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut e = LteEngine::new(
                    scenario.clone(),
                    LteEngineConfig::paper_default(mode),
                    SeedSeq::new(11),
                );
                e.backlog_all(u64::MAX / 4);
                e.run_until(Instant::from_secs(1));
                black_box(e.delivered_bits().to_vec())
            })
        });
    }
    g.finish();
}

/// Fig 9(c) kernel: 5 s of the web workload over the CellFi engine.
fn bench_fig9c(c: &mut Criterion) {
    use cellfi_sim::workload::{WebWorkload, WebWorkloadConfig};
    let mut cfg = ScenarioConfig::paper_default(3, 3);
    cfg.shadowing_sigma = 0.0;
    let scenario = Scenario::generate(cfg, SeedSeq::new(13));
    c.bench_function("fig9c_pageload", |b| {
        b.iter(|| {
            let mut e = LteEngine::new(
                scenario.clone(),
                LteEngineConfig::paper_default(ImMode::CellFi),
                SeedSeq::new(15),
            );
            let mut web = WebWorkload::new(
                WebWorkloadConfig::default(),
                scenario.n_ues(),
                SeedSeq::new(16),
            );
            while e.now() < Instant::from_secs(5) {
                for (u, bytes) in web.poll(e.now()) {
                    e.enqueue(u, bytes * 8);
                }
                for (u, bits) in e.step_subframe() {
                    web.delivered(u, bits / 8, e.now());
                }
            }
            black_box(web.completed.len())
        })
    });
}

/// §6.3.4 signalling overhead: pure accounting.
fn bench_overhead(c: &mut Criterion) {
    c.bench_function("overhead", |b| {
        b.iter(|| black_box(experiments::overhead::run(quick())))
    });
}

/// Theorem 1: one convergence run on a 16-ring.
fn bench_theorem1(c: &mut Criterion) {
    use cellfi_core::theory::HoppingProcess;
    use cellfi_core::ConflictGraph;
    let edges: Vec<(u32, u32)> = (0..16u32).map(|i| (i, (i + 1) % 16)).collect();
    c.bench_function("theorem1_convergence", |b| {
        b.iter(|| {
            let g = ConflictGraph::from_edges(16, &edges);
            let mut p = HoppingProcess::new(g, vec![3; 16], 13, 0.1, 21);
            black_box(p.run(100_000))
        })
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = bench_table1, bench_fig1, bench_fig2, bench_fig6, bench_fig7,
        bench_fig8, bench_prach_experiment, bench_fig9_engine, bench_fig9c,
        bench_overhead, bench_theorem1
}
criterion_main!(figures);
