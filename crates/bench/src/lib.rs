//! # cellfi-bench
//!
//! Criterion benchmark harness for the CellFi reproduction. The library
//! itself only hosts shared bench helpers; the targets live in
//! `benches/`, one per paper table/figure (see DESIGN.md §4 for the
//! index).

#![forbid(unsafe_code)]
