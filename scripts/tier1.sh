#!/usr/bin/env sh
# Tier-1 verification: build, full test suite, then the cross-thread
# determinism contract under both a serial and a parallel worker count
# (the engine must produce bit-identical results either way; see
# tests/determinism.rs and crates/sim/src/parallel.rs).
set -eu

cd "$(dirname "$0")/.."

echo "== tier1: format =="
cargo fmt --all -- --check

echo "== tier1: build (release) =="
cargo build --workspace --release --offline

echo "== tier1: clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier1: cellfi-lint (v1 hygiene + v2 parallel/slab/hot/cachegen, deny-by-default) =="
cargo run -q -p cellfi-lint --offline

echo "== tier1: cellfi-lint baseline self-check (--json vs committed empty baseline) =="
# The workspace ships lint-zero: the machine-readable report must stay
# byte-identical to the committed empty-findings baseline, so a rule
# regression (or a sneaky allowlist) cannot pass silently even if the
# exit-code path above changes.
LINT_TMP=$(mktemp)
cargo run -q -p cellfi-lint --offline -- --json > "$LINT_TMP"
diff tests/goldens/lint_baseline.json "$LINT_TMP"
rm -f "$LINT_TMP"

echo "== tier1: test suite =="
cargo test --workspace --offline -q

echo "== tier1: determinism, CELLFI_THREADS=1 =="
CELLFI_THREADS=1 cargo test --offline -q --test determinism

echo "== tier1: determinism, CELLFI_THREADS=4 =="
CELLFI_THREADS=4 cargo test --offline -q --test determinism

echo "== tier1: trace smoke (byte-identical across thread counts and vs goldens) =="
TRACE_TMP=$(mktemp -d)
trap 'rm -rf "$TRACE_TMP"' EXIT
EXP=target/release/exp
for name in fig7b fig9a; do
    (cd "$TRACE_TMP" && CELLFI_THREADS=1 "$OLDPWD/$EXP" "$name" --trace --quick > /dev/null)
    mv "$TRACE_TMP/TRACE_$name.jsonl" "$TRACE_TMP/trace_t1.jsonl"
    mv "$TRACE_TMP/METRICS_$name.jsonl" "$TRACE_TMP/metrics_t1.jsonl"
    (cd "$TRACE_TMP" && CELLFI_THREADS=8 "$OLDPWD/$EXP" "$name" --trace --quick > /dev/null)
    "$EXP" trace-diff "$TRACE_TMP/trace_t1.jsonl" "$TRACE_TMP/TRACE_$name.jsonl"
    "$EXP" trace-diff "$TRACE_TMP/metrics_t1.jsonl" "$TRACE_TMP/METRICS_$name.jsonl"
    # The streams must also match the committed pre-refactor goldens:
    # behaviour preservation, not just thread independence.
    "$EXP" trace-diff "tests/goldens/TRACE_$name.jsonl" "$TRACE_TMP/TRACE_$name.jsonl"
    "$EXP" trace-diff "tests/goldens/METRICS_$name.jsonl" "$TRACE_TMP/METRICS_$name.jsonl"
done

echo "== tier1: chaos smoke (fault-injected trace byte-identical across thread counts) =="
# The chaos experiment layers the fault injector and lease lifecycles on
# top of the engine; its resilience event stream must stay a pure
# function of the seed regardless of worker count. No committed golden:
# the contract here is thread independence, pinned values live in
# tests/goldens/values_chaos.json.
(cd "$TRACE_TMP" && CELLFI_THREADS=1 "$OLDPWD/$EXP" chaos --trace --quick > /dev/null)
mv "$TRACE_TMP/TRACE_chaos.jsonl" "$TRACE_TMP/trace_t1.jsonl"
mv "$TRACE_TMP/METRICS_chaos.jsonl" "$TRACE_TMP/metrics_t1.jsonl"
(cd "$TRACE_TMP" && CELLFI_THREADS=8 "$OLDPWD/$EXP" chaos --trace --quick > /dev/null)
"$EXP" trace-diff "$TRACE_TMP/trace_t1.jsonl" "$TRACE_TMP/TRACE_chaos.jsonl"
"$EXP" trace-diff "$TRACE_TMP/metrics_t1.jsonl" "$TRACE_TMP/METRICS_chaos.jsonl"

echo "== tier1: spectrum_scale smoke (fleet golden, fleet monitors, desync trace across thread counts) =="
# The fleet experiment multiplexes 2,048 lease lifecycles over 8
# sharded PAWS backends with desynchronized renewals and a grant
# cache. Gates: quick-mode values byte-identical to the committed
# golden, the two-monitor fleet catalogue green (lease gate + vacate
# margin), the new fleet event kinds present in the trace, and the
# trace byte-identical between serial and parallel runs.
(cd "$TRACE_TMP" && CELLFI_THREADS=1 "$OLDPWD/$EXP" spectrum_scale --trace --monitors --quick --json > "$TRACE_TMP/fleet_out.txt")
grep "^spectrum_scale: monitors: armed=2" "$TRACE_TMP/fleet_out.txt" | grep " violations=0"
sed -n "/^{/,/^}/p" "$TRACE_TMP/fleet_out.txt" | diff tests/goldens/values_spectrum_scale.json -
grep -q "\"ev\":\"renew_batch\"" "$TRACE_TMP/TRACE_spectrum_scale.jsonl"
grep -q "\"ev\":\"cache_hit\"" "$TRACE_TMP/TRACE_spectrum_scale.jsonl"
grep -q "\"ev\":\"shard_outage\"" "$TRACE_TMP/TRACE_spectrum_scale.jsonl"
mv "$TRACE_TMP/TRACE_spectrum_scale.jsonl" "$TRACE_TMP/trace_t1.jsonl"
mv "$TRACE_TMP/METRICS_spectrum_scale.jsonl" "$TRACE_TMP/metrics_t1.jsonl"
(cd "$TRACE_TMP" && CELLFI_THREADS=8 "$OLDPWD/$EXP" spectrum_scale --trace --monitors --quick > /dev/null)
"$EXP" trace-diff "$TRACE_TMP/trace_t1.jsonl" "$TRACE_TMP/TRACE_spectrum_scale.jsonl"
"$EXP" trace-diff "$TRACE_TMP/metrics_t1.jsonl" "$TRACE_TMP/METRICS_spectrum_scale.jsonl"

echo "== tier1: invariant monitors + trace-query smoke (fig9a) =="
# fig9a runs with the full monitor catalogue armed: the gate is zero
# violations on the healthy paper topology (a violation writes
# FLIGHT_fig9a.jsonl and exits non-zero, failing the pipe under set -e).
(cd "$TRACE_TMP" && CELLFI_THREADS=1 "$OLDPWD/$EXP" fig9a --trace --monitors --quick > "$TRACE_TMP/monitors_out.txt")
grep "monitors: armed=4" "$TRACE_TMP/monitors_out.txt" | grep " violations=0"
# The written trace must round-trip through the query engine: a per-kind
# count table with a non-empty total row.
"$EXP" trace-query "$TRACE_TMP/TRACE_fig9a.jsonl" --group-by ev --agg count \
    | grep -q "^total"

echo "== tier1: fig9metro smoke (metro-scale culled run: golden, monitors, RSS ceiling) =="
# 2,500 cells / 100,000 clients fit in memory only because the spatial
# index culls the interference model to the near field — the dense
# [ue][ap][subchannel] slabs alone would need terabytes. The RSS
# ceiling turns that into a gate: a regression back to dense layouts
# cannot pass. getrusage(RUSAGE_CHILDREN) stands in for /usr/bin/time
# -v, which the CI image does not ship.
METRO_RSS_CEILING_KB=2000000
(cd "$TRACE_TMP" && CELLFI_THREADS=1 python3 -c '
import resource, subprocess, sys
rc = subprocess.call(sys.argv[1:])
kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
open("metro_rss_kb", "w").write(str(kb))
sys.exit(rc)
' "$OLDPWD/$EXP" fig9metro --quick --trace --monitors --json > "$TRACE_TMP/metro_out.txt")
grep "^fig9metro: monitors: armed=4" "$TRACE_TMP/metro_out.txt" | grep " violations=0"
# Quick-mode values must match the committed golden byte for byte.
sed -n "/^{/,/^}/p" "$TRACE_TMP/metro_out.txt" | diff tests/goldens/values_fig9metro.json -
# The traced pocket run must carry the cull audit trail.
grep -q "\"ev\":\"cull\"" "$TRACE_TMP/TRACE_fig9metro.jsonl"
METRO_RSS_KB=$(cat "$TRACE_TMP/metro_rss_kb")
echo "fig9metro max RSS: ${METRO_RSS_KB} KB (ceiling ${METRO_RSS_CEILING_KB} KB)"
[ "$METRO_RSS_KB" -le "$METRO_RSS_CEILING_KB" ]

echo "== tier1: bench regression smoke (engine rate vs committed baseline) =="
# A cheap single-threaded rerun of the engine bench, gated loosely
# (20% drop) so hot-path regressions fail fast while CI wall-clock
# noise does not. Re-pin BENCH_engine.json deliberately after intended
# performance changes. Per-span profiler means from BENCH_obs.json are
# compared warn-only.
(cd "$TRACE_TMP" && CELLFI_THREADS=1 "$OLDPWD/$EXP" overhead --bench --quick > /dev/null)
sh scripts/bench_compare.sh BENCH_engine.json "$TRACE_TMP/BENCH_engine.json" 20 \
    BENCH_obs.json "$TRACE_TMP/BENCH_obs.json"

echo "== tier1: OK =="
