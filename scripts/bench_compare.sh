#!/usr/bin/env sh
# Compare two BENCH_engine.json reports (baseline vs candidate) and fail
# if the candidate's steady-state engine rate has regressed by more than
# an allowed percentage.
#
#   scripts/bench_compare.sh BASELINE.json CANDIDATE.json [MAX_DROP_PCT] \
#                            [OBS_BASELINE.json OBS_CANDIDATE.json]
#
# The headline gate is `engine_subframes_per_sec` — the one number the
# performance work is pinned on. The PRACH line-rate factor is printed
# for context but never gates: it benches a single-core DSP kernel whose
# wall clock is too noisy on shared CI hardware to fail a build over.
#
# When the optional BENCH_obs.json pair is given, each profiler span's
# mean_ns is diffed as well; spans that moved more than MAX_DROP_PCT in
# either direction print a WARN line. Per-span timings are warn-only —
# they are far noisier than the aggregate rate, but a WARN in CI output
# is the early signal that one layer of the hierarchy absorbed a
# regression the headline number averaged away.
set -eu

if [ "$#" -lt 2 ]; then
    echo "usage: $0 BASELINE.json CANDIDATE.json [MAX_DROP_PCT] [OBS_BASE OBS_CAND]" >&2
    exit 2
fi
BASE=$1
CAND=$2
MAX_DROP=${3:-20}
OBS_BASE=${4:-}
OBS_CAND=${5:-}

# Pull one numeric field out of a flat pretty-printed JSON report. The
# bench reports are machine-written by serde_json with one key per line,
# so a line-oriented extraction is exact.
field() {
    awk -F': ' -v key="\"$2\"" '$1 ~ key { gsub(/[,[:space:]]/, "", $2); print $2 }' "$1"
}

for f in "$BASE" "$CAND"; do
    if [ ! -f "$f" ]; then
        echo "bench-compare: missing report $f" >&2
        exit 2
    fi
done

BASE_RATE=$(field "$BASE" engine_subframes_per_sec)
CAND_RATE=$(field "$CAND" engine_subframes_per_sec)
BASE_PRACH=$(field "$BASE" prach_line_rate_factor)
CAND_PRACH=$(field "$CAND" prach_line_rate_factor)

awk -v b="$BASE_RATE" -v c="$CAND_RATE" \
    -v bp="$BASE_PRACH" -v cp="$CAND_PRACH" -v drop="$MAX_DROP" '
BEGIN {
    printf "engine_subframes_per_sec: baseline %.0f, candidate %.0f (%+.1f%%)\n",
        b, c, (c / b - 1) * 100
    printf "prach_line_rate_factor:   baseline %.2f, candidate %.2f (informational)\n",
        bp, cp
    if (c < b * (1 - drop / 100)) {
        printf "bench-compare: FAIL — engine rate dropped more than %.0f%%\n", drop
        exit 1
    }
    printf "bench-compare: OK (allowed drop %.0f%%)\n", drop
}'

# Per-span mean_ns comparison (warn-only) over the flat "spans" section
# of a BENCH_obs.json pair. Span objects are machine-written one key per
# line, so the name on the `"<span>": {` line and the following
# `"mean_ns": <v>` line pair up exactly.
if [ -n "$OBS_BASE" ] && [ -n "$OBS_CAND" ]; then
    for f in "$OBS_BASE" "$OBS_CAND"; do
        if [ ! -f "$f" ]; then
            echo "bench-compare: missing obs report $f" >&2
            exit 2
        fi
    done
    awk -v warn="$MAX_DROP" '
    /": \{/ {
        line = $0
        sub(/^[^"]*"/, "", line)
        sub(/".*/, "", line)
        span = line
    }
    /"mean_ns"/ {
        v = $0
        sub(/^[^:]*: */, "", v)
        sub(/,.*/, "", v)
        if (NR == FNR) {
            base[span] = v
        } else if (!(span in cand)) {
            cand[span] = v
            order[n++] = span
        }
    }
    END {
        warned = 0
        for (i = 0; i < n; i++) {
            s = order[i]
            if (!(s in base) || base[s] == 0) {
                printf "span %-16s mean_ns candidate %.0f (no baseline)\n", s, cand[s]
                continue
            }
            pct = (cand[s] / base[s] - 1) * 100
            printf "span %-16s mean_ns baseline %.0f candidate %.0f (%+.1f%%)\n",
                s, base[s], cand[s], pct
            if (pct > warn || pct < -warn) {
                printf "bench-compare: WARN — span %s mean_ns moved more than %.0f%% (warn-only)\n",
                    s, warn
                warned++
            }
        }
        if (warned == 0) {
            printf "bench-compare: per-span means within %.0f%%\n", warn
        }
    }' "$OBS_BASE" "$OBS_CAND"
fi
