#!/usr/bin/env sh
# Compare two BENCH_engine.json reports (baseline vs candidate) and fail
# if the candidate's steady-state engine rate has regressed by more than
# an allowed percentage.
#
#   scripts/bench_compare.sh BASELINE.json CANDIDATE.json [MAX_DROP_PCT]
#
# The headline gate is `engine_subframes_per_sec` — the one number the
# performance work is pinned on. The PRACH line-rate factor is printed
# for context but never gates: it benches a single-core DSP kernel whose
# wall clock is too noisy on shared CI hardware to fail a build over.
set -eu

if [ "$#" -lt 2 ]; then
    echo "usage: $0 BASELINE.json CANDIDATE.json [MAX_DROP_PCT]" >&2
    exit 2
fi
BASE=$1
CAND=$2
MAX_DROP=${3:-20}

# Pull one numeric field out of a flat pretty-printed JSON report. The
# bench reports are machine-written by serde_json with one key per line,
# so a line-oriented extraction is exact.
field() {
    awk -F': ' -v key="\"$2\"" '$1 ~ key { gsub(/[,[:space:]]/, "", $2); print $2 }' "$1"
}

for f in "$BASE" "$CAND"; do
    if [ ! -f "$f" ]; then
        echo "bench-compare: missing report $f" >&2
        exit 2
    fi
done

BASE_RATE=$(field "$BASE" engine_subframes_per_sec)
CAND_RATE=$(field "$CAND" engine_subframes_per_sec)
BASE_PRACH=$(field "$BASE" prach_line_rate_factor)
CAND_PRACH=$(field "$CAND" prach_line_rate_factor)

awk -v b="$BASE_RATE" -v c="$CAND_RATE" \
    -v bp="$BASE_PRACH" -v cp="$CAND_PRACH" -v drop="$MAX_DROP" '
BEGIN {
    printf "engine_subframes_per_sec: baseline %.0f, candidate %.0f (%+.1f%%)\n",
        b, c, (c / b - 1) * 100
    printf "prach_line_rate_factor:   baseline %.2f, candidate %.2f (informational)\n",
        bp, cp
    if (c < b * (1 - drop / 100)) {
        printf "bench-compare: FAIL — engine rate dropped more than %.0f%%\n", drop
        exit 1
    }
    printf "bench-compare: OK (allowed drop %.0f%%)\n", drop
}'
